"""The untrusted main hash table: bucket slots with chain heads.

Figure 4 places the hash table itself in the unprotected region; only
the pointer to it (and the integrity metadata) stays in the enclave.
Each bucket slot is 16 bytes::

    offset  size  field
    0       8     head_ptr        first entry of the chain (0 = empty)
    8       8     mac_bucket_ptr  first MAC-bucket node (§5.2; 0 = none)

Both pointers are availability-only untrusted metadata; before the
enclave dereferences either, the §7 range check runs (see
:meth:`BucketTable.check_pointer`).
"""

from __future__ import annotations

import struct

from repro.errors import PointerSafetyError
from repro.sim.enclave import Enclave, ExecContext

SLOT_SIZE = 16


class BucketTable:
    """Bucket-slot array living in untrusted memory."""

    def __init__(self, enclave: Enclave, num_buckets: int):
        self._enclave = enclave
        self._memory = enclave.machine.memory
        self.num_buckets = num_buckets
        self.base = enclave.alloc_untrusted(num_buckets * SLOT_SIZE)

    def slot_addr(self, bucket: int) -> int:
        """Untrusted address of a bucket's slot."""
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        return self.base + bucket * SLOT_SIZE

    def check_pointer(self, ptr: int, enabled: bool) -> int:
        """§7 pointer-safety check for untrusted-sourced pointers.

        A malicious host could rewrite a chain pointer to target the
        enclave's own virtual range, tricking the enclave into clobbering
        its secrets when it writes entry fields.  The range is contiguous,
        so the check is one comparison.
        """
        if enabled and ptr != 0 and self._memory.in_enclave_range(ptr):
            raise PointerSafetyError(
                f"untrusted pointer 0x{ptr:x} targets the enclave range"
            )
        return ptr

    def read_head(self, ctx: ExecContext, bucket: int, check: bool = True) -> int:
        """Read a bucket's chain head pointer (charged untrusted read)."""
        raw = self._memory.read(ctx, self.slot_addr(bucket), 8)
        return self.check_pointer(struct.unpack("<Q", raw)[0], check)

    def write_head(self, ctx: ExecContext, bucket: int, ptr: int) -> None:
        """Point a bucket's chain at ``ptr``."""
        self._memory.write(ctx, self.slot_addr(bucket), struct.pack("<Q", ptr))

    def read_mac_ptr(self, ctx: ExecContext, bucket: int, check: bool = True) -> int:
        """Read a bucket's MAC-bucket pointer."""
        raw = self._memory.read(ctx, self.slot_addr(bucket) + 8, 8)
        return self.check_pointer(struct.unpack("<Q", raw)[0], check)

    def write_mac_ptr(self, ctx: ExecContext, bucket: int, ptr: int) -> None:
        """Point a bucket at its MAC-bucket chain."""
        self._memory.write(ctx, self.slot_addr(bucket) + 8, struct.pack("<Q", ptr))
