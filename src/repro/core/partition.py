"""Hash-partitioned multi-threading (paper §5.3, Figure 8).

Each simulated worker thread owns an exclusive slice of the hash-key
space — ``Partition(KEY) = H(KEY) / total_threads`` — realized here as
one independent :class:`~repro.core.store.ShieldStore` per thread, each
with its own buckets, MAC tree and allocator, all sharing one machine
(and therefore one EPC and one paging serializer).  Because partitions
are disjoint, no locks exist and per-thread clocks advance independently;
run wall-time is the slowest thread's clock.

SGX cannot grow an enclave's thread pool at runtime (§5.3), so the
partition count is fixed at construction.

``parallel=True`` additionally backs the batched operations
(:meth:`PartitionedShieldStore.multi_get` / ``multi_set`` /
``multi_delete``) with a real :class:`~concurrent.futures.ThreadPoolExecutor`:
the router groups a batch's keys by owning partition and fans the
per-partition slices out to OS worker threads.  This is safe precisely
because of the §5.3 design — partitions never touch each other's
buckets, MAC trees or caches, so the only shared structures are the
machine-level ones (allocator bump pointers, guarded by a lock, and
event counters).  Each partition charges its own simulated
:class:`~repro.sim.clock.ThreadClock`, and the machine clock merges them
afterwards as ``max`` over threads, exactly as in sequential routing.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.config import StoreConfig
from repro.core.stats import StoreStats
from repro.core.store import DEFAULT_MEASUREMENT, ShieldStore
from repro.crypto.keys import KeyRing
from repro.errors import StoreError
from repro.sim.enclave import Enclave, Machine


class PartitionedShieldStore:
    """ShieldStore sharded over the machine's worker threads."""

    def __init__(
        self,
        config: StoreConfig,
        machine: Optional[Machine] = None,
        master_secret: Optional[bytes] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ):
        self.config = config
        self.parallel = parallel
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self.machine = machine if machine is not None else Machine(seed=config.seed)
        num_threads = self.machine.clock.num_threads
        if config.num_buckets < num_threads:
            raise StoreError("need at least one bucket per thread")
        self.enclave = Enclave(self.machine, DEFAULT_MEASUREMENT)
        if master_secret is None:
            master_secret = bytes(
                self.machine.rng.getrandbits(8) for _ in range(32)
            )
        # All partitions share the key ring (one enclave, one secret);
        # the router hashes with it before dispatching.
        self._keyring = KeyRing(master_secret)
        per_buckets = max(1, config.num_buckets // num_threads)
        per_hashes = max(1, min(config.num_mac_hashes // num_threads, per_buckets))
        part_config = config.with_(
            num_buckets=per_buckets, num_mac_hashes=per_hashes
        )
        self.partitions: List[ShieldStore] = [
            ShieldStore(
                part_config,
                machine=self.machine,
                enclave=self.enclave,
                thread_id=t,
                master_secret=master_secret,
            )
            for t in range(num_threads)
        ]

    @property
    def num_threads(self) -> int:
        return len(self.partitions)

    def partition_of(self, key: bytes) -> ShieldStore:
        """Route a key to its owning partition (hash-disjoint, lock-free)."""
        h = self._keyring.keyed_bucket_hash(bytes(key), 1 << 30)
        return self.partitions[h * self.num_threads >> 30]

    # -- operations are delegated to the owner thread's store ---------------
    def get(self, key: bytes) -> bytes:
        return self.partition_of(key).get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self.partition_of(key).set(key, value)

    def delete(self, key: bytes) -> None:
        self.partition_of(key).delete(key)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self.partition_of(key).append(key, suffix)

    def increment(self, key: bytes, delta: int = 1) -> int:
        return self.partition_of(key).increment(key, delta)

    def compare_and_swap(self, key: bytes, expected: bytes, new_value: bytes) -> bool:
        return self.partition_of(key).compare_and_swap(key, expected, new_value)

    def contains(self, key: bytes) -> bool:
        return self.partition_of(key).contains(key)

    # -- batched operations: group by partition, then fan out ---------------
    def _group_by_partition(self, keyed_items) -> List[Tuple[ShieldStore, list]]:
        """Split ``(key, payload)`` pairs into per-partition slices.

        Order within a slice is preserved (later writes to a repeated
        key must win), and slices are returned in thread-id order so
        sequential routing is deterministic.
        """
        grouped: Dict[int, Tuple[ShieldStore, list]] = {}
        for key, payload in keyed_items:
            partition = self.partition_of(key)
            grouped.setdefault(partition.thread_id, (partition, []))[1].append(
                (key, payload)
            )
        return [grouped[tid] for tid in sorted(grouped)]

    def _fan_out(self, slices, method, project):
        """Run ``method`` over every partition slice, threaded or not.

        ``project`` turns a slice's ``(key, payload)`` pairs into the
        store-level argument.  With ``parallel=True`` the slices run on
        a real thread pool — each worker charges only its own
        partition's simulated thread clock, so merged wall time is
        ``max`` over partitions either way; with ``parallel=False``
        they run inline on the calling thread.
        """
        if self._executor is None and self.parallel and len(slices) > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers or self.num_threads,
                thread_name_prefix="shieldstore-partition",
            )
        if self._executor is None or len(slices) <= 1:
            return [
                method(partition)(project(items)) for partition, items in slices
            ]
        futures = [
            self._executor.submit(method(partition), project(items))
            for partition, items in slices
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Release the parallel router's worker threads (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def multi_get(self, keys):
        """Batched lookup, fanned out to the owning partitions.

        Each partition serves its slice of the batch on its own thread
        clock, so the batch completes in max-partition time — the
        multi-key analogue of Fig. 8's partitioning.
        """
        slices = self._group_by_partition((bytes(key), None) for key in keys)
        results = {}
        for partial in self._fan_out(
            slices,
            lambda partition: partition.multi_get,
            lambda items: [key for key, _ in items],
        ):
            results.update(partial)
        return results

    def multi_set(self, items) -> None:
        """Batched insert/update, fanned out to the owning partitions.

        ``items`` is a dict or iterable of ``(key, value)`` pairs.  Each
        partition runs its slice through the store-level batched write
        pipeline (per-set verify-once + dirty-tracked set-hash flush).
        """
        if isinstance(items, dict):
            items = items.items()
        slices = self._group_by_partition(
            (bytes(key), bytes(value)) for key, value in items
        )
        self._fan_out(
            slices,
            lambda partition: partition.multi_set,
            lambda pairs: pairs,
        )

    def multi_delete(self, keys):
        """Batched removal; returns ``{key: was_present}`` like the
        store-level :meth:`~repro.core.store.ShieldStore.multi_delete`."""
        slices = self._group_by_partition((bytes(key), None) for key in keys)
        results = {}
        for partial in self._fan_out(
            slices,
            lambda partition: partition.multi_delete,
            lambda items: [key for key, _ in items],
        ):
            results.update(partial)
        return results

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def iter_items(self):
        """All (key, value) pairs across partitions (thread-id order)."""
        for partition in self.partitions:
            yield from partition.iter_items()

    def audit(self) -> int:
        """Full-table integrity audit over every partition."""
        return sum(p.audit() for p in self.partitions)

    # -- aggregates -----------------------------------------------------
    def stats(self) -> StoreStats:
        """Merged operation stats across partitions."""
        merged = StoreStats()
        for p in self.partitions:
            merged = merged.merge(p.stats)
        return merged

    def elapsed_us(self) -> float:
        """Simulated wall time (slowest thread)."""
        return self.machine.elapsed_us()
