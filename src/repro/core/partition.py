"""Hash-partitioned parallel routing (paper §5.3, Figure 8).

Each simulated worker owns an exclusive slice of the hash-key space —
``Partition(KEY) = H(KEY) / total_threads`` — realized as one
independent :class:`~repro.core.store.ShieldStore` per partition, each
with its own buckets, MAC tree and allocator.  Because partitions are
disjoint, no locks exist and per-partition clocks advance
independently; run wall-time is the slowest partition's clock.

SGX cannot grow an enclave's thread pool at runtime (§5.3), so the
partition count is fixed at construction.

Execution modes
---------------
``mode`` selects how batched operations are driven:

* ``"sequential"`` — partition slices run inline on the calling thread
  (the default for simulation-focused callers that inject a shared
  :class:`~repro.sim.enclave.Machine`; simulated clocks still merge as
  ``max`` over partitions, so modeled parallelism is unaffected);
* ``"threads"`` — slices fan out to a real
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Wall-clock gains are
  GIL-bound, so this mostly helps when partition work releases the GIL;
* ``"processes"`` — the shared-nothing multiprocess engine
  (:mod:`repro.core.procpool`): one long-lived worker process per
  partition, each owning a private enclave sim + store, fed with
  batched frames over pipes.  This is the mode that makes wall-clock
  throughput scale with cores;
* ``"auto"`` — ``processes`` when the store owns its machine, has more
  than one partition, and the platform supports worker processes;
  otherwise ``threads``/``sequential`` following the ``parallel`` flag.
  Callers that pass an explicit ``machine`` keep in-process partitions:
  worker processes cannot share a simulated machine, and those callers
  (experiments, cost-model tests) are reading its clocks and counters.
  For the same reason, combining an injected ``machine`` with an
  explicit ``mode="processes"`` is rejected with a
  :class:`~repro.errors.StoreError` rather than silently leaving the
  machine's clocks idle.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.config import StoreConfig
from repro.core.stats import StoreStats
from repro.core.store import DEFAULT_MEASUREMENT, ShieldStore
from repro.crypto.keys import KeyRing
from repro.errors import KeyNotFoundError, ReproError, StoreError
from repro.sim.enclave import Enclave, Machine

MODE_AUTO = "auto"
MODE_SEQUENTIAL = "sequential"
MODE_THREADS = "threads"
MODE_PROCESSES = "processes"
_MODES = (MODE_SEQUENTIAL, MODE_THREADS, MODE_PROCESSES)


def _annotate_partition_error(exc: ReproError, index: int) -> ReproError:
    """Re-raise material: same class, message prefixed with the partition."""
    try:
        wrapped = type(exc)(f"partition {index}: {exc}")
    except Exception:
        wrapped = StoreError(f"partition {index}: {exc}")
    return wrapped


class PartitionedShieldStore:
    """ShieldStore sharded over disjoint hash partitions.

    Parameters
    ----------
    config:
        Table geometry for the *whole* store; each partition gets
        ``num_buckets / n`` buckets and ``num_mac_hashes / n`` hashes.
    machine:
        Shared simulated host.  Providing one pins the partitions
        in-process (see module docstring); omitting it lets ``auto``
        pick the multiprocess engine.
    master_secret:
        32-byte enclave master secret shared by every partition (one
        logical enclave); drawn from the machine RNG when omitted.
    parallel:
        Back-compat switch: ``True`` is shorthand for ``mode="threads"``
        when ``mode`` is left on ``auto``.
    max_workers:
        Cap on thread-mode executor workers (clamped to the CPU count).
    mode:
        ``"auto"``, ``"sequential"``, ``"threads"`` or ``"processes"``.
    num_partitions:
        Partition count when no ``machine`` is given (the store then
        builds its own ``Machine`` with that many simulated threads).
    data_plane:
        Worker IPC transport for ``processes`` mode: ``"shm"``
        (sealed shared-memory rings, the default where supported) or
        ``"pipe"`` (the portable multiprocessing pipe).
    wal_dir:
        Directory for per-partition sealed write-ahead logs
        (:mod:`repro.core.wal`).  When set, every mutating op appends a
        sealed frame before applying, and construction replays any
        existing log chain — so recovery is snapshot + log tail instead
        of snapshot alone.  ``None`` (the default) disables the WAL.
    wal_sync_ms:
        Group-commit window in milliseconds: appends inside the window
        share one fsync.  ``0`` syncs every append.
    """

    def __init__(
        self,
        config: StoreConfig,
        machine: Optional[Machine] = None,
        master_secret: Optional[bytes] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        mode: str = MODE_AUTO,
        num_partitions: Optional[int] = None,
        platform_secret: Optional[bytes] = None,
        data_plane: Optional[str] = None,
        wal_dir: Optional[str] = None,
        wal_sync_ms: Optional[float] = None,
    ):
        self.config = config
        self.parallel = parallel
        self.wal_dir = wal_dir
        if wal_sync_ms is None:
            from repro.core.wal import DEFAULT_SYNC_MS

            wal_sync_ms = DEFAULT_SYNC_MS
        self.wal_sync_ms = wal_sync_ms
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool = None
        machine_owned = machine is None
        if machine_owned:
            machine = Machine(
                num_threads=num_partitions or 1, seed=config.seed
            )
        elif num_partitions not in (None, machine.clock.num_threads):
            raise StoreError(
                "num_partitions conflicts with the machine's thread count"
            )
        self.machine = machine
        self._num_partitions = machine.clock.num_threads
        if config.num_buckets < self._num_partitions:
            raise StoreError("need at least one bucket per thread")
        self.mode = self._resolve_mode(
            mode, parallel, machine_owned, self._num_partitions
        )
        self.enclave = Enclave(self.machine, DEFAULT_MEASUREMENT)
        if master_secret is None:
            master_secret = bytes(
                self.machine.rng.getrandbits(8) for _ in range(32)
            )
        # All partitions share the key ring (one enclave, one secret);
        # the router hashes with it before dispatching.
        self._keyring = KeyRing(master_secret)
        if platform_secret is None:
            from repro.core.persistence import default_platform_secret

            platform_secret = default_platform_secret(master_secret)
        # Seals multi-partition snapshot headers and worker sections; a
        # redeployment with the same master secret can unseal them.
        self.platform_secret = platform_secret
        per_buckets = max(1, config.num_buckets // self._num_partitions)
        per_hashes = max(
            1, min(config.num_mac_hashes // self._num_partitions, per_buckets)
        )
        # Cache byte budgets are whole-store knobs too: each partition
        # (and each worker process, which receives part_config at spawn)
        # gets an equal slice of the §6.3 value cache and the verified
        # MAC-list cache.  Per-worker caches need no cross-process
        # coherence — partitions are disjoint key spaces.
        part_config = config.with_(
            num_buckets=per_buckets,
            num_mac_hashes=per_hashes,
            cache_bytes=config.cache_bytes // self._num_partitions,
            mac_cache_bytes=config.mac_cache_bytes // self._num_partitions,
        )
        self._part_config = part_config
        if self.mode == MODE_PROCESSES:
            # Shared-nothing: the data plane lives in worker processes,
            # one private enclave sim each.  The parent keeps only the
            # routing key ring and the (attestable) front-end enclave.
            from repro.core.procpool import ProcessPartitionPool

            self.partitions: List[ShieldStore] = []
            self._pool = ProcessPartitionPool(
                part_config,
                self._num_partitions,
                master_secret,
                platform_secret=platform_secret,
                data_plane=data_plane,
                wal_dir=wal_dir,
                wal_sync_ms=wal_sync_ms,
            )
        else:
            self.partitions = [
                ShieldStore(
                    part_config,
                    machine=self.machine,
                    enclave=self.enclave,
                    thread_id=t,
                    master_secret=master_secret,
                )
                for t in range(self._num_partitions)
            ]
            if wal_dir is not None:
                self._attach_wals(counter=0)

    def _attach_wals(self, counter: int) -> None:
        """Recover + attach each in-process partition's sealed WAL.

        Replays any existing log chain starting at snapshot ``counter``
        into the (just-built or just-restored) partition stores, then
        attaches the tail logs so subsequent mutations append-before-
        apply.  Replay runs with the log detached, so re-applied ops do
        not re-log themselves.
        """
        from repro.core.wal import WriteAheadLog, apply_request

        for t, partition in enumerate(self.partitions):
            if partition.wal is not None:
                partition.wal.close()
                partition.wal = None
            partition.wal = WriteAheadLog.recover(
                self.wal_dir,
                t,
                partition.keyring.master,
                partition.config.suite_name,
                counter,
                apply=lambda req, p=partition: apply_request(p, req),
                stats=partition.stats,
                sync_ms=self.wal_sync_ms,
            )

    @staticmethod
    def _resolve_mode(
        mode: str, parallel: bool, machine_owned: bool, n: int
    ) -> str:
        from repro.core.procpool import process_mode_supported

        if mode == MODE_AUTO:
            if n <= 1:
                return MODE_SEQUENTIAL
            if machine_owned and not parallel and process_mode_supported():
                # Store owns its machine and more than one partition:
                # pick the engine that actually scales with cores.
                return MODE_PROCESSES
            return MODE_THREADS if parallel else MODE_SEQUENTIAL
        if mode not in _MODES:
            raise StoreError(f"unknown partition mode {mode!r}")
        if mode == MODE_PROCESSES:
            if not machine_owned:
                # Same rule auto mode applies: worker processes cannot
                # share a simulated machine, and a caller injecting one
                # is reading its clocks and counters — silently leaving
                # them idle would falsify every measurement.
                raise StoreError(
                    "mode='processes' cannot use an injected machine; "
                    "omit machine= (pass num_partitions) to run worker "
                    "processes, or pick an in-process mode"
                )
            if not process_mode_supported():
                raise StoreError("platform cannot run the multiprocess engine")
        return mode

    @property
    def num_threads(self) -> int:
        return self._num_partitions

    @property
    def data_plane(self) -> Optional[str]:
        """Worker IPC transport (``shm``/``pipe``); ``None`` in-process."""
        if self._pool is not None:
            return self._pool.data_plane
        return None

    def transport_stats(self):
        """Data-plane counters (empty object for in-process modes)."""
        from repro.core.stats import TransportStats

        if self._pool is not None:
            return self._pool.transport_stats()
        return TransportStats()

    def stage_timings(self) -> Optional[Dict[str, float]]:
        """Serialize / IPC-wait / worker-compute seconds (pool mode only)."""
        if self._pool is not None:
            return self._pool.stage_timings()
        return None

    @property
    def partition_state(self) -> str:
        """Health of the partition engine.

        In-process modes are always ``"ok"``; the multiprocess pool
        additionally reports ``"recovered"`` / ``"degraded"`` after a
        worker crash, ``"broken"`` when unrecoverable, and ``"closed"``.
        """
        if self._pool is not None:
            return self._pool.state
        return "ok"

    def _rekey(self, master_secret: bytes) -> None:
        """Adopt a restored snapshot's master secret for routing.

        Called by :class:`~repro.core.persistence.PartitionSnapshotter`
        after all partitions loaded their sections: keys were
        partitioned under the snapshot's keyed hash, so the router must
        hash with the same secret.
        """
        self._keyring = KeyRing(master_secret)

    def partition_index_of(self, key: bytes) -> int:
        """Owning partition index (hash-disjoint, mode-independent)."""
        if self._num_partitions == 1:
            return 0  # every keyed hash maps to the only partition
        h = self._keyring.keyed_bucket_hash(bytes(key), 1 << 30)
        return h * self._num_partitions >> 30

    def partition_of(self, key: bytes) -> ShieldStore:
        """Route a key to its owning in-process partition store.

        Only meaningful for the in-process modes; in ``processes`` mode
        the partition lives in a worker and cannot be handed out.
        """
        if self._pool is not None:
            raise StoreError(
                "partition stores live in worker processes; "
                "use partition_index_of() for routing"
            )
        return self.partitions[self.partition_index_of(key)]

    # -- single-key operations ----------------------------------------------
    def _proc_single(self, request) -> bytes:
        """Forward one single-key op to its owner worker."""
        from repro.net.message import STATUS_MISS, STATUS_OK

        index = self.partition_index_of(request.key)
        response = self._pool.execute(index, request)
        if response.status == STATUS_MISS:
            raise KeyNotFoundError(request.key)
        if response.status != STATUS_OK:
            raise StoreError(f"partition {index}: {request.op} failed")
        return response.value

    def get(self, key: bytes) -> bytes:
        if self._pool is not None:
            from repro.net.message import Request

            return self._proc_single(Request("get", bytes(key)))
        return self.partition_of(key).get(key)

    def set(self, key: bytes, value: bytes) -> None:
        if self._pool is not None:
            from repro.net.message import Request

            self._proc_single(Request("set", bytes(key), bytes(value)))
            return
        self.partition_of(key).set(key, value)

    def delete(self, key: bytes) -> None:
        if self._pool is not None:
            from repro.net.message import Request

            self._proc_single(Request("delete", bytes(key)))
            return
        self.partition_of(key).delete(key)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        if self._pool is not None:
            from repro.net.message import Request

            return self._proc_single(Request("append", bytes(key), bytes(suffix)))
        return self.partition_of(key).append(key, suffix)

    def increment(self, key: bytes, delta: int = 1) -> int:
        if self._pool is not None:
            from repro.net.message import Request

            return int(
                self._proc_single(
                    Request("increment", bytes(key), str(delta).encode())
                )
            )
        return self.partition_of(key).increment(key, delta)

    def compare_and_swap(self, key: bytes, expected: bytes, new_value: bytes) -> bool:
        if self._pool is not None:
            from repro.net.message import Request, encode_cas_value

            return (
                self._proc_single(
                    Request("cas", bytes(key), encode_cas_value(expected, new_value))
                )
                == b"1"
            )
        return self.partition_of(key).compare_and_swap(key, expected, new_value)

    def contains(self, key: bytes) -> bool:
        if self._pool is not None:
            try:
                self.get(key)
                return True
            except KeyNotFoundError:
                return False
        return self.partition_of(key).contains(key)

    # -- batched operations: group by partition, then fan out ---------------
    def _group_by_partition(self, keyed_items) -> List[Tuple[int, list]]:
        """Split ``(key, payload)`` pairs into per-partition slices.

        Order within a slice is preserved (later writes to a repeated
        key must win), and slices come back in partition order so
        sequential routing is deterministic.
        """
        if self._num_partitions == 1:
            # Routing is the identity with one partition: skip the
            # per-key keyed hash (it dominates single-worker batches).
            return [(0, list(keyed_items))]
        grouped: Dict[int, list] = {}
        for key, payload in keyed_items:
            grouped.setdefault(self.partition_index_of(key), []).append(
                (key, payload)
            )
        return [(index, grouped[index]) for index in sorted(grouped)]

    def _fan_out(self, slices, method, project):
        """Run ``method`` over every in-process partition slice.

        ``project`` turns a slice's ``(key, payload)`` pairs into the
        store-level argument.  A batch landing on a single partition
        always runs inline — submitting one future buys no parallelism
        and pays executor overhead.  In ``threads`` mode multi-partition
        batches fan out to a pool whose size is clamped to the CPU
        count; each worker charges only its own partition's simulated
        clock, so merged simulated time is ``max`` over partitions in
        every mode.  Partition failures re-raise as the original
        exception class with the partition index prepended.
        """
        if self.mode != MODE_THREADS or len(slices) <= 1:
            results = []
            for index, items in slices:
                try:
                    results.append(method(self.partitions[index])(project(items)))
                except ReproError as exc:
                    raise _annotate_partition_error(exc, index) from exc
            return results
        if self._executor is None:
            workers = self._max_workers or self._num_partitions
            workers = max(1, min(workers, os.cpu_count() or 1))
            self._executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="shieldstore-partition",
            )
        futures = [
            (index, self._executor.submit(method(self.partitions[index]), project(items)))
            for index, items in slices
        ]
        results = []
        first_error: Optional[ReproError] = None
        for index, future in futures:
            try:
                results.append(future.result())
            except ReproError as exc:
                if first_error is None:
                    first_error = _annotate_partition_error(exc, index)
                    first_error.__cause__ = exc
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        """Release worker threads / worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
        for partition in self.partitions:
            if partition.wal is not None:
                partition.wal.close()
                partition.wal = None

    def __enter__(self) -> "PartitionedShieldStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def multi_get(self, keys) -> Dict[bytes, Optional[bytes]]:
        """Batched lookup, fanned out to the owning partitions.

        Each partition serves its slice of the batch on its own clock
        (or its own process), so the batch completes in max-partition
        time — the multi-key analogue of Fig. 8's partitioning.
        """
        slices = self._group_by_partition((bytes(key), None) for key in keys)
        if self._pool is not None:
            from repro.net.message import (
                Request,
                decode_multi_values,
                encode_multi_keys,
            )

            requests = {
                index: Request("mget", b"", encode_multi_keys([k for k, _ in items]))
                for index, items in slices
            }
            responses = self._pool.execute_many(requests)
            results: Dict[bytes, Optional[bytes]] = {}
            for index, items in slices:
                values = decode_multi_values(responses[index].value)
                results.update(zip((k for k, _ in items), values))
            return results
        results = {}
        for partial in self._fan_out(
            slices,
            lambda partition: partition.multi_get,
            lambda items: [key for key, _ in items],
        ):
            results.update(partial)
        return results

    def multi_set(self, items) -> None:
        """Batched insert/update, fanned out to the owning partitions.

        ``items`` is a dict or iterable of ``(key, value)`` pairs.  Each
        partition runs its slice through the store-level batched write
        pipeline (per-set verify-once + dirty-tracked set-hash flush).
        """
        if isinstance(items, dict):
            items = items.items()
        slices = self._group_by_partition(
            (bytes(key), bytes(value)) for key, value in items
        )
        if self._pool is not None:
            from repro.net.message import Request, encode_multi_items

            self._pool.execute_many(
                {
                    index: Request("mset", b"", encode_multi_items(pairs))
                    for index, pairs in slices
                }
            )
            return
        self._fan_out(
            slices,
            lambda partition: partition.multi_set,
            lambda pairs: pairs,
        )

    def multi_delete(self, keys) -> Dict[bytes, bool]:
        """Batched removal; returns ``{key: was_present}`` like the
        store-level :meth:`~repro.core.store.ShieldStore.multi_delete`."""
        slices = self._group_by_partition((bytes(key), None) for key in keys)
        if self._pool is not None:
            from repro.net.message import (
                Request,
                decode_multi_values,
                encode_multi_keys,
            )

            requests = {
                index: Request(
                    "mdelete", b"", encode_multi_keys([k for k, _ in items])
                )
                for index, items in slices
            }
            responses = self._pool.execute_many(requests)
            results: Dict[bytes, bool] = {}
            for index, items in slices:
                flags = decode_multi_values(responses[index].value)
                results.update(
                    (key, flag is not None)
                    for (key, _), flag in zip(items, flags)
                )
            return results
        results = {}
        for partial in self._fan_out(
            slices,
            lambda partition: partition.multi_delete,
            lambda items: [key for key, _ in items],
        ):
            results.update(partial)
        return results

    def __len__(self) -> int:
        if self._pool is not None:
            return self._pool.total_len()
        return sum(len(p) for p in self.partitions)

    def iter_items(self):
        """All (key, value) pairs across partitions (partition order)."""
        if self._pool is not None:
            for index in range(self._num_partitions):
                yield from self._pool.iter_partition_items(index)
            return
        for partition in self.partitions:
            yield from partition.iter_items()

    def audit(self) -> int:
        """Full-table integrity audit over every partition."""
        if self._pool is not None:
            return self._pool.audit_all()
        return sum(p.audit() for p in self.partitions)

    # -- aggregates -----------------------------------------------------
    def per_partition_stats(self) -> List[StoreStats]:
        """Operation counters of each partition, in partition order.

        In ``processes`` mode the snapshots cross the process boundary
        as dicts and are reconstituted here, so batch-amortization
        counters survive intact.
        """
        if self._pool is not None:
            return self._pool.gather_stats()
        return [p.stats for p in self.partitions]

    def stats(self) -> StoreStats:
        """Merged operation stats across partitions.

        Pool-level recovery accounting (workers respawned after a
        crash, the upper bound of mutations lost) is folded in on top
        of the per-partition counters.
        """
        merged = StoreStats()
        for stats in self.per_partition_stats():
            merged = merged.merge(stats)
        if self._pool is not None:
            merged.worker_recoveries += self._pool.recoveries
            merged.worker_ops_lost += self._pool.ops_lost
        return merged

    def elapsed_us(self) -> float:
        """Simulated wall time (slowest partition / worker)."""
        if self._pool is not None:
            return max(self.machine.elapsed_us(), self._pool.elapsed_us())
        return self.machine.elapsed_us()
