"""Hash-partitioned multi-threading (paper §5.3, Figure 8).

Each simulated worker thread owns an exclusive slice of the hash-key
space — ``Partition(KEY) = H(KEY) / total_threads`` — realized here as
one independent :class:`~repro.core.store.ShieldStore` per thread, each
with its own buckets, MAC tree and allocator, all sharing one machine
(and therefore one EPC and one paging serializer).  Because partitions
are disjoint, no locks exist and per-thread clocks advance independently;
run wall-time is the slowest thread's clock.

SGX cannot grow an enclave's thread pool at runtime (§5.3), so the
partition count is fixed at construction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import StoreConfig
from repro.core.stats import StoreStats
from repro.core.store import DEFAULT_MEASUREMENT, ShieldStore
from repro.crypto.keys import KeyRing
from repro.errors import StoreError
from repro.sim.enclave import Enclave, Machine


class PartitionedShieldStore:
    """ShieldStore sharded over the machine's worker threads."""

    def __init__(
        self,
        config: StoreConfig,
        machine: Optional[Machine] = None,
        master_secret: Optional[bytes] = None,
    ):
        self.config = config
        self.machine = machine if machine is not None else Machine(seed=config.seed)
        num_threads = self.machine.clock.num_threads
        if config.num_buckets < num_threads:
            raise StoreError("need at least one bucket per thread")
        self.enclave = Enclave(self.machine, DEFAULT_MEASUREMENT)
        if master_secret is None:
            master_secret = bytes(
                self.machine.rng.getrandbits(8) for _ in range(32)
            )
        # All partitions share the key ring (one enclave, one secret);
        # the router hashes with it before dispatching.
        self._keyring = KeyRing(master_secret)
        per_buckets = max(1, config.num_buckets // num_threads)
        per_hashes = max(1, min(config.num_mac_hashes // num_threads, per_buckets))
        part_config = config.with_(
            num_buckets=per_buckets, num_mac_hashes=per_hashes
        )
        self.partitions: List[ShieldStore] = [
            ShieldStore(
                part_config,
                machine=self.machine,
                enclave=self.enclave,
                thread_id=t,
                master_secret=master_secret,
            )
            for t in range(num_threads)
        ]

    @property
    def num_threads(self) -> int:
        return len(self.partitions)

    def partition_of(self, key: bytes) -> ShieldStore:
        """Route a key to its owning partition (hash-disjoint, lock-free)."""
        h = self._keyring.keyed_bucket_hash(bytes(key), 1 << 30)
        return self.partitions[h * self.num_threads >> 30]

    # -- operations are delegated to the owner thread's store ---------------
    def get(self, key: bytes) -> bytes:
        return self.partition_of(key).get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self.partition_of(key).set(key, value)

    def delete(self, key: bytes) -> None:
        self.partition_of(key).delete(key)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self.partition_of(key).append(key, suffix)

    def increment(self, key: bytes, delta: int = 1) -> int:
        return self.partition_of(key).increment(key, delta)

    def compare_and_swap(self, key: bytes, expected: bytes, new_value: bytes) -> bool:
        return self.partition_of(key).compare_and_swap(key, expected, new_value)

    def contains(self, key: bytes) -> bool:
        return self.partition_of(key).contains(key)

    def multi_get(self, keys):
        """Batched lookup, fanned out to the owning partitions.

        Each partition serves its slice of the batch on its own thread
        clock, so the batch completes in max-partition time — the
        multi-key analogue of Fig. 8's partitioning.
        """
        by_partition = {}
        for key in keys:
            partition = self.partition_of(bytes(key))
            by_partition.setdefault(partition.thread_id, (partition, []))[1].append(
                bytes(key)
            )
        results = {}
        for partition, partition_keys in by_partition.values():
            results.update(partition.multi_get(partition_keys))
        return results

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    # -- aggregates -----------------------------------------------------
    def stats(self) -> StoreStats:
        """Merged operation stats across partitions."""
        merged = StoreStats()
        for p in self.partitions:
            merged = merged.merge(p.stats)
        return merged

    def elapsed_us(self) -> float:
        """Simulated wall time (slowest thread)."""
        return self.machine.elapsed_us()
