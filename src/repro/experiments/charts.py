"""ASCII chart rendering for experiment results.

The paper's evaluation is figures, not tables; these renderers let a
terminal user *see* the shapes the benchmarks assert — log-scale line
charts for sweeps (Figs. 2, 3, 17) and grouped bar charts for
categorical comparisons (Figs. 10-16, 18, 19).  No plotting libraries:
plain Unicode to stdout.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

_BAR_FILL = "█"
_BAR_HALF = "▌"
_POINTS = "ox+*#@%&"


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if value >= 1000:
        return f"{value / 1000:.0f}k"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.2g}"


def bar_chart(
    title: str,
    labels: Sequence[str],
    series: Dict[str, Sequence[Optional[float]]],
    width: int = 48,
    unit: str = "",
) -> str:
    """Grouped horizontal bar chart.

    ``series`` maps series name -> one value per label; None renders as
    an ``(unsupported)`` stub (e.g. Eleos beyond its pool limit).
    """
    peak = max(
        (v for values in series.values() for v in values if v is not None),
        default=1.0,
    )
    peak = peak or 1.0
    name_width = max(len(name) for name in series)
    lines = [f"-- {title} --"]
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[i]
            if value is None:
                lines.append(f"  {name.ljust(name_width)} | (unsupported)")
                continue
            cells = value / peak * width
            bar = _BAR_FILL * int(cells)
            if cells - int(cells) >= 0.5:
                bar += _BAR_HALF
            lines.append(
                f"  {name.ljust(name_width)} |{bar} {_fmt_tick(value)}{unit}"
            )
    return "\n".join(lines)


def line_chart(
    title: str,
    x_labels: Sequence,
    series: Dict[str, Sequence[Optional[float]]],
    height: int = 12,
    log_y: bool = True,
    unit: str = "",
) -> str:
    """Multi-series chart on a character grid (log y-axis by default).

    Mirrors the paper's log-scale sweep figures; each series gets a
    distinct point glyph, collisions render as ``*``.
    """
    values = [v for vs in series.values() for v in vs if v is not None and v > 0]
    if not values:
        return f"-- {title} -- (no data)"
    lo, hi = min(values), max(values)
    if log_y:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    if hi_t - lo_t < 1e-12:
        hi_t = lo_t + 1.0
    columns = len(x_labels)
    grid = [[" "] * columns for _ in range(height)]

    def row_of(value: float) -> int:
        t = math.log10(value) if log_y else value
        frac = (t - lo_t) / (hi_t - lo_t)
        return height - 1 - int(round(frac * (height - 1)))

    for si, (name, vs) in enumerate(series.items()):
        glyph = _POINTS[si % len(_POINTS)]
        for x, v in enumerate(vs):
            if v is None or (log_y and v <= 0):
                continue
            r = row_of(v)
            grid[r][x] = "*" if grid[r][x] not in (" ", glyph) else glyph

    axis_width = max(len(_fmt_tick(hi)), len(_fmt_tick(lo))) + 1
    lines = [f"-- {title} --"]
    for r, row in enumerate(grid):
        if r == 0:
            tick = _fmt_tick(hi)
        elif r == height - 1:
            tick = _fmt_tick(lo)
        else:
            tick = ""
        lines.append(f"{tick.rjust(axis_width)} |" + " ".join(row))
    lines.append(" " * axis_width + " +" + "--" * columns)
    label_line = " " * (axis_width + 2) + " ".join(
        str(x)[0] for x in x_labels
    )
    lines.append(label_line + f"   (x: {x_labels[0]}..{x_labels[-1]}, y{' log' if log_y else ''}: {unit})")
    legend = "   ".join(
        f"{_POINTS[i % len(_POINTS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (axis_width + 2) + legend)
    return "\n".join(lines)


def render_sweep(result, x_header: str, series_headers: List[str], log_y=True) -> str:
    """Render a TableResult sweep (one x column, several y columns)."""
    x = result.column(x_header)
    series = {h: result.column(h) for h in series_headers}
    return line_chart(
        f"{result.experiment}: {result.title}", x, series, log_y=log_y
    )


def render_bars(result, label_header: str, series_headers: List[str], unit="") -> str:
    """Render a TableResult as grouped bars."""
    labels = [str(v) for v in result.column(label_header)]
    series = {h: result.column(h) for h in series_headers}
    return bar_chart(
        f"{result.experiment}: {result.title}", labels, series, unit=unit
    )
