"""Figure 9 — decryptions to find the matching entry, w/ and w/o key hint.

Searching a bucket chain for an encrypted key requires decrypting
candidates until the requested key matches (§5.4).  The 1-byte key hint
prunes candidates: only entries whose plaintext-keyed hint byte matches
are decrypted (1/256 false-positive rate).  The paper counts total
decryptions on the small data set for 1M and 8M buckets; the reduction
is larger for 1M buckets where chains are ~10 long.
"""

from __future__ import annotations

from repro.core.config import shield_opt
from repro.core.store import ShieldStore
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_PAIRS,
    SEED,
    EcallFrontend,
    TableResult,
    make_machine,
    preload,
    run_workload,
    scaled,
)
from repro.workloads import RD50_Z, SMALL, OperationStream

BUCKET_CONFIGS = (1_000_000, 8_000_000)


def _decryptions(
    buckets_paper: int, hints: bool, scale: float, ops: int, seed: int
):
    machine = make_machine(1, scale, seed=seed)
    num_buckets = scaled(buckets_paper, scale)
    config = shield_opt(
        num_buckets=num_buckets,
        num_mac_hashes=min(scaled(4_000_000, scale), num_buckets),
        key_hint_enabled=hints,
        two_step_search=False,
        scale=scale,
    )
    store = ShieldStore(config, machine=machine)
    system = EcallFrontend(store)
    stream = OperationStream(RD50_Z, SMALL, scaled(PAPER_PAIRS, scale), seed=seed)
    preload(system, stream)
    before = store.stats.search_decryptions
    result = run_workload(system, "shieldopt", stream, ops, warmup=0)
    return store.stats.search_decryptions - before, result.kops


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 9 (decryption counts per search)."""
    rows = []
    for buckets in BUCKET_CONFIGS:
        without, _k1 = _decryptions(buckets, hints=False, scale=scale, ops=ops, seed=seed)
        with_hint, _k2 = _decryptions(buckets, hints=True, scale=scale, ops=ops, seed=seed)
        rows.append(
            [
                f"{buckets // 1_000_000}M",
                without,
                with_hint,
                without / max(1, with_hint),
                round(without / ops, 2),
                round(with_hint / ops, 2),
            ]
        )
    notes = [
        "paper: large reduction at 1M buckets (chains ~10); smaller at 8M "
        "(chains ~1.25) because fewer unnecessary decryptions exist",
    ]
    return TableResult(
        "Figure 9",
        "Number of decryptions to find the matching entry w/ and w/o key hint",
        ["buckets", "w/o hint", "w/ hint", "reduction", "per-op w/o", "per-op w/"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
