"""Figure 18 — networked evaluation (client/server over 10 GbE).

Six configurations: Memcached+Graphene, Baseline(+HotCalls), ShieldOpt,
ShieldOpt+HotCalls, Insecure Memcached, Insecure Baseline; three data
sizes; 1 and 4 threads; all Table 2 workloads averaged.  Secure systems
carry session-encrypted requests/responses (§3.2).

Paper anchors (vs Baseline+HotCalls): ShieldOpt+HotCalls 4.9-6.4x at 1
thread and 9.2-10.7x at 4 threads; vs Insecure Baseline it is 3.0x /
3.9x slower, while the secure Baseline is 17.7x / 39.8x slower.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines import GrapheneMemcachedStore, InsecureStore, NaiveSgxStore
from repro.core import PartitionedShieldStore, ShieldStore
from repro.crypto.keys import derive_key
from repro.crypto.suite import make_suite
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_BUCKETS,
    PAPER_PAIRS,
    SEED,
    TableResult,
    make_machine,
    preload,
    scaled,
    shield_config,
)
from repro.net.message import Request
from repro.net.server import (
    FRONTEND_DIRECT,
    FRONTEND_HOTCALLS,
    FRONTEND_OCALL,
    NetworkedServer,
    make_secure_channels,
)
from repro.workloads import LARGE, MEDIUM, SMALL, OperationStream, TABLE2_WORKLOADS

NET_SYSTEMS = (
    "memcached+graphene",
    "baseline+hotcalls",
    "shieldopt",
    "shieldopt+hotcalls",
    "insecure memcached",
    "insecure baseline",
)


def _channels():
    root = b"fig18-session-root-secret-0000000"
    suite_c = make_suite(
        "fast-hashlib",
        derive_key(root, "fig18/chan/enc"),
        derive_key(root, "fig18/chan/mac"),
    )
    suite_s = make_suite(
        "fast-hashlib",
        derive_key(root, "fig18/chan/enc"),
        derive_key(root, "fig18/chan/mac"),
    )
    return make_secure_channels(suite_c, suite_s)


def _build(name: str, machine, scale: float) -> NetworkedServer:
    buckets = scaled(PAPER_BUCKETS, scale)
    threads = machine.clock.num_threads
    if name == "insecure memcached":
        return NetworkedServer(
            GrapheneMemcachedStore(machine, num_buckets=buckets, secure=False),
            frontend=FRONTEND_DIRECT,
        )
    if name == "insecure baseline":
        return NetworkedServer(
            InsecureStore(machine, num_buckets=buckets), frontend=FRONTEND_DIRECT
        )
    if name == "memcached+graphene":
        return NetworkedServer(
            GrapheneMemcachedStore(machine, num_buckets=buckets, secure=True),
            frontend=FRONTEND_OCALL,
        )
    if name == "baseline+hotcalls":
        cch, sch = _channels()
        return NetworkedServer(
            NaiveSgxStore(machine, num_buckets=buckets),
            frontend=FRONTEND_HOTCALLS,
            server_channel=sch,
            client_channel=cch,
        )
    if name in ("shieldopt", "shieldopt+hotcalls"):
        config = shield_config(scale)
        store = (
            PartitionedShieldStore(config, machine=machine)
            if threads > 1
            else ShieldStore(config, machine=machine)
        )
        cch, sch = _channels()
        return NetworkedServer(
            store,
            frontend=FRONTEND_HOTCALLS if name.endswith("hotcalls") else FRONTEND_OCALL,
            server_channel=sch,
            client_channel=cch,
        )
    raise ValueError(name)


def _drive(server: NetworkedServer, stream: OperationStream, count: int) -> int:
    executed = 0
    for op in stream.operations(count):
        if op.op == "rmw":
            server.handle(Request("get", op.key))
            server.handle(Request("set", op.key, op.value))
        else:
            server.handle(Request(op.op, op.key, op.value or b""))
        executed += 1
    return executed


def measure_cell(
    name: str, data, threads: int, scale: float, ops: int, seed: int
) -> float:
    """Average networked Kop/s over all Table 2 workloads for one cell."""
    machine = make_machine(threads, scale, seed=seed)
    server = _build(name, machine, scale)
    load = OperationStream(TABLE2_WORKLOADS[0], data, scaled(PAPER_PAIRS, scale), seed=seed)
    preload(server.store, load)
    values = []
    for spec in TABLE2_WORKLOADS:
        stream = OperationStream(spec, data, scaled(PAPER_PAIRS, scale), seed=seed + 13)
        _drive(server, stream, ops)  # warm
        machine.reset_measurement()
        executed = _drive(server, stream, ops)
        values.append(executed / machine.elapsed_us() * 1000.0)
    return sum(values) / len(values)


def run(
    scale: float = DEFAULT_SCALE,
    ops: int = DEFAULT_OPS // 3,
    seed: int = SEED,
    data_specs=(SMALL, MEDIUM, LARGE),
    threads=(1, 4),
) -> TableResult:
    """Regenerate Figure 18 (networked throughput)."""
    rows = []
    cells: Dict[Tuple[str, str, int], float] = {}
    for thread_count in threads:
        for data in data_specs:
            row = [thread_count, data.name]
            for name in NET_SYSTEMS:
                kops = measure_cell(name, data, thread_count, scale, ops, seed)
                cells[(name, data.name, thread_count)] = kops
                row.append(kops)
            rows.append(row)
    notes = []
    for thread_count in threads:
        ratios = [
            cells[("shieldopt+hotcalls", d.name, thread_count)]
            / cells[("baseline+hotcalls", d.name, thread_count)]
            for d in data_specs
        ]
        gaps = [
            cells[("insecure baseline", d.name, thread_count)]
            / cells[("shieldopt+hotcalls", d.name, thread_count)]
            for d in data_specs
        ]
        notes.append(
            f"{thread_count}T: ShieldOpt+HC / Baseline+HC = "
            f"{min(ratios):.1f}-{max(ratios):.1f}x "
            f"(paper: {'4.9-6.4' if thread_count == 1 else '9.2-10.7'}x); "
            f"insecure gap {min(gaps):.1f}-{max(gaps):.1f}x "
            f"(paper avg: {'3.0' if thread_count == 1 else '3.9'}x)"
        )
    return TableResult(
        "Figure 18",
        "Networked evaluation with 1 and 4 threads (Kop/s)",
        ["threads", "data"] + list(NET_SYSTEMS),
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
