"""Table 1 — baseline parity with memcached (no SGX, networked).

The paper validates its §3.1 baseline design by showing it matches
memcached in the networked setting with 512 B values: 313.5 vs 311.6
Kop/s at 1 thread, 876.6 vs 845.8 at 4 threads.  We run the same
comparison between the memcached model (insecure mode, slab allocator,
maintainer thread) and the plain baseline over the insecure network
front-end.
"""

from __future__ import annotations

from repro.baselines import GrapheneMemcachedStore, InsecureStore
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_BUCKETS,
    PAPER_PAIRS,
    SEED,
    TableResult,
    make_machine,
    preload,
    scaled,
)
from repro.net.message import Request
from repro.net.server import FRONTEND_DIRECT, NetworkedServer
from repro.workloads import DataSpec, OperationStream, RD95_Z

_DATA = DataSpec("table1", 16, 512)


def _networked_kops(system_factory, threads: int, scale: float, ops: int, seed: int) -> float:
    machine = make_machine(threads, scale, seed=seed)
    system = system_factory(machine)
    stream = OperationStream(RD95_Z, _DATA, scaled(PAPER_PAIRS, scale), seed=seed)
    preload(system, stream)
    server = NetworkedServer(system, frontend=FRONTEND_DIRECT)
    # Warm, then measure.
    for op in stream.operations(ops):
        server.handle(Request(op.op if op.op != "rmw" else "get", op.key, op.value or b""))
    machine.reset_measurement()
    executed = 0
    for op in stream.operations(ops):
        if op.op == "rmw":
            server.handle(Request("get", op.key))
            server.handle(Request("set", op.key, op.value))
        else:
            server.handle(Request(op.op, op.key, op.value or b""))
        executed += 1
    return executed / machine.elapsed_us() * 1000.0


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Table 1 (Kop/s, networked, no SGX, 512 B values)."""
    buckets = scaled(PAPER_BUCKETS, scale)
    rows = []
    paper = {1: (313.5, 311.6), 4: (876.6, 845.8)}
    for threads in (1, 4):
        memcached = _networked_kops(
            lambda m: GrapheneMemcachedStore(m, num_buckets=buckets, secure=False),
            threads, scale, ops, seed,
        )
        baseline = _networked_kops(
            lambda m: InsecureStore(m, num_buckets=buckets),
            threads, scale, ops, seed,
        )
        p_mc, p_base = paper[threads]
        rows.append([threads, memcached, baseline, baseline / memcached, p_mc, p_base])
    notes = [
        "parity check: the baseline should be within ~10% of memcached",
    ]
    return TableResult(
        "Table 1",
        "Throughput for key-value stores w/o SGX: memcached vs baseline",
        ["threads", "memcached (Kop/s)", "baseline (Kop/s)", "base/mc",
         "paper memcached", "paper baseline"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
