"""Figure 17 — ShieldStore vs Eleos across working-set sizes (4 KB values).

4 KB values are Eleos's best case (one value per page).  The paper
sweeps 32 MB-8 GB: Eleos wins below ~512 MB (its spage cache covers the
set), degrades steeply past ~200 MB, and cannot run past 2 GB at all
(memsys5 pool limit).  ShieldStore is flat at any size; with the
in-enclave cache (§6.3) it matches Eleos at small sizes too.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import EleosStore
from repro.core.config import shield_opt
from repro.core.store import ShieldStore
from repro.errors import UnsupportedConfigError
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    SEED,
    EcallFrontend,
    TableResult,
    make_machine,
    preload,
    run_workload,
)
from repro.sim.cycles import GB, MB
from repro.workloads import DataSpec, OperationStream, RD100_Z

WORKING_SET_MB = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)
_DATA = DataSpec("fig17", 16, 4096)


def _eleos_kops(wss: int, scale: float, ops: int, seed: int) -> Optional[float]:
    pairs = max(16, wss // (16 + 4096 + 16))
    machine = make_machine(1, scale, seed=seed)
    eleos = EleosStore(
        machine,
        page_bytes=4096,
        pool_limit_bytes=int(2 * GB * scale),
        num_buckets=max(64, int(pairs * 0.8)),
    )
    stream = OperationStream(RD100_Z, _DATA, pairs, seed=seed)
    try:
        preload(eleos, stream)
    except UnsupportedConfigError:
        return None
    return run_workload(eleos, "eleos", stream, ops).kops


def _shield_kops(wss: int, scale: float, ops: int, seed: int, cache: bool) -> float:
    pairs = max(16, wss // (16 + 4096 + 49))
    machine = make_machine(1, scale, seed=seed)
    config = shield_opt(
        num_buckets=max(64, pairs),
        num_mac_hashes=max(64, pairs // 2),
        scale=scale,
    )
    if cache:
        config = config.with_(
            cache_bytes=max(64 * 1024, int(machine.cost.epc_effective_bytes * 0.6))
        )
    system = EcallFrontend(ShieldStore(config, machine=machine))
    stream = OperationStream(RD100_Z, _DATA, pairs, seed=seed)
    preload(system, stream)
    return run_workload(system, "shieldopt", stream, ops).kops


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 17 (throughput vs working-set size)."""
    rows = []
    for wss_mb in WORKING_SET_MB:
        wss = max(16 * (4096 + 65), int(wss_mb * MB * scale))
        rows.append(
            [
                wss_mb,
                _eleos_kops(wss, scale, ops, seed),
                _shield_kops(wss, scale, ops, seed, cache=False),
                _shield_kops(wss, scale, ops, seed, cache=True),
            ]
        )
    notes = [
        "100% get, 4KB values (Eleos's best case); '-' = unsupported "
        "(memsys5 2GB pool limit, §6.3)",
        "paper: Eleos wins small sets, degrades past ~200MB, dies >2GB; "
        "ShieldOpt flat; +cache matches Eleos at small sizes",
    ]
    return TableResult(
        "Figure 17",
        "Comparison with Eleos on working-set sizes (4KB values)",
        ["WSS (MB)", "Eleos Kop/s", "ShieldOpt Kop/s", "ShieldOpt+cache Kop/s"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
