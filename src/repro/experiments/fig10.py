"""Figure 10 — overall throughput, normalized to the Baseline.

Four systems (Memcached+Graphene, Baseline, ShieldBase, ShieldOpt),
three data sizes, 1 and 4 threads, averaged over all Table 2 workloads,
each thread count normalized to its own Baseline.

Paper bands: ShieldBase 7-10x (1T) / 21-26x (4T); ShieldOpt 8-11x (1T) /
24-30x (4T); Memcached+Graphene within -12%..+34% of Baseline.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_KV_SYSTEMS,
    DEFAULT_OPS,
    DEFAULT_SCALE,
    SEED,
    SYSTEM_BASELINE,
    TableResult,
)
from repro.experiments.suite import average_kops, run_suite
from repro.workloads import LARGE, MEDIUM, SMALL, TABLE2_WORKLOADS


def run(
    scale: float = DEFAULT_SCALE,
    ops: int = DEFAULT_OPS,
    seed: int = SEED,
    threads=(1, 4),
    data_specs=(SMALL, MEDIUM, LARGE),
) -> TableResult:
    """Regenerate Figure 10 (normalized average throughput)."""
    results = run_suite(
        list(ALL_KV_SYSTEMS),
        list(data_specs),
        list(threads),
        list(TABLE2_WORKLOADS),
        scale=scale,
        ops=ops,
        seed=seed,
    )
    rows = []
    for thread_count in threads:
        for data in data_specs:
            base = average_kops(
                results, SYSTEM_BASELINE, data.name, thread_count, TABLE2_WORKLOADS
            )
            row = [thread_count, data.name, round(base, 1)]
            for system in ALL_KV_SYSTEMS:
                avg = average_kops(
                    results, system, data.name, thread_count, TABLE2_WORKLOADS
                )
                row.append(avg / base if base else None)
            rows.append(row)
    notes = [
        "normalized to Baseline at the same thread count (paper Fig. 10)",
        "paper bands: ShieldOpt 8-11x (1T), 24-30x (4T); ShieldBase 7-10x / 21-26x",
    ]
    return TableResult(
        "Figure 10",
        "Overall performance with 1 and 4 threads (normalized to Baseline)",
        ["threads", "data", "baseline Kop/s"] + [f"{s} (norm)" for s in ALL_KV_SYSTEMS],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
