"""Figure 19 — persistence: no / naive / optimized snapshots.

Periodic snapshots (§4.4) write the already-encrypted untrusted entries
plus sealed in-enclave metadata to storage every 60 s.  ``naive`` blocks
request processing for the whole write; ``optimized`` (Algorithm 1)
forks a child writer and keeps serving through a temporary table.

Paper: naive degrades up to 25% on the large set; optimized degrades
only 2.1% / 2.6% / 6.5% (small/medium/large), and 100%-read workloads
see almost none (nothing to mirror into the temp table).
"""

from __future__ import annotations

from repro.core import (
    MODE_NAIVE,
    MODE_NONE,
    MODE_OPTIMIZED,
    ShieldStore,
    SnapshotPolicy,
    SnapshotScheduler,
)
from repro.crypto.keys import derive_key
from repro.crypto.suite import make_suite
from repro.experiments.common import (
    DEFAULT_SCALE,
    PAPER_PAIRS,
    SEED,
    TableResult,
    make_machine,
    preload,
    scaled,
    shield_config,
)
from repro.net.message import Request
from repro.net.server import FRONTEND_HOTCALLS, NetworkedServer, make_secure_channels
from repro.workloads import (
    LARGE,
    MEDIUM,
    SMALL,
    OperationStream,
    RD50_Z,
    RD95_Z,
    RD100_Z,
)

MODES = (MODE_NONE, MODE_NAIVE, MODE_OPTIMIZED)
WORKLOADS = (RD50_Z, RD95_Z, RD100_Z)
PAPER_INTERVAL_US = 60_000_000.0


def _measure(
    mode: str, spec, data, scale: float, seed: int, max_ops: int, intervals: float
) -> float:
    machine = make_machine(1, scale, seed=seed)
    store = ShieldStore(shield_config(scale), machine=machine)
    root = b"fig19-session-root-secret-0000000"
    suite_c = make_suite(
        "fast-hashlib",
        derive_key(root, "fig19/enc"),
        derive_key(root, "fig19/mac"),
    )
    suite_s = make_suite(
        "fast-hashlib",
        derive_key(root, "fig19/enc"),
        derive_key(root, "fig19/mac"),
    )
    cch, sch = make_secure_channels(suite_c, suite_s)
    server = NetworkedServer(
        store, frontend=FRONTEND_HOTCALLS, server_channel=sch, client_channel=cch
    )
    stream = OperationStream(spec, data, scaled(PAPER_PAIRS, scale), seed=seed)
    preload(store, stream)
    machine.reset_measurement()
    interval_us = PAPER_INTERVAL_US * scale
    scheduler = SnapshotScheduler(store, SnapshotPolicy(mode=mode, interval_us=interval_us))
    target_us = intervals * interval_us
    executed = 0
    for op in stream.operations(max_ops):
        if op.op == "rmw":
            server.handle(Request("get", op.key))
            server.handle(Request("set", op.key, op.value))
        else:
            server.handle(Request(op.op, op.key, op.value or b""))
        executed += 1
        scheduler.tick(is_write=op.op != "get")
        if machine.elapsed_us() >= target_us:
            break
    return executed / machine.elapsed_us() * 1000.0


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = SEED,
    max_ops: int = 60_000,
    intervals: float = 2.5,
) -> TableResult:
    """Regenerate Figure 19 (throughput with persistence support)."""
    rows = []
    for data in (SMALL, MEDIUM, LARGE):
        for spec in WORKLOADS:
            cells = {
                mode: _measure(mode, spec, data, scale, seed, max_ops, intervals)
                for mode in MODES
            }
            rows.append(
                [
                    data.name,
                    spec.name,
                    cells[MODE_NONE],
                    cells[MODE_NAIVE],
                    cells[MODE_OPTIMIZED],
                    100 * (1 - cells[MODE_NAIVE] / cells[MODE_NONE]),
                    100 * (1 - cells[MODE_OPTIMIZED] / cells[MODE_NONE]),
                ]
            )
    notes = [
        "snapshot interval = 60s x scale, so snapshot duty cycle matches "
        "the paper's 60-second Redis-style schedule",
        "paper: naive degrades up to 25% (large); optimized 2.1/2.6/6.5% "
        "avg by size, ~0% for 100% reads",
    ]
    return TableResult(
        "Figure 19",
        "Performance of ShieldStore with persistency support (Kop/s)",
        ["data", "workload", "none", "naive", "optimized",
         "naive loss %", "opt loss %"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
