"""Figure 16 — ShieldStore vs Eleos across value sizes (500 MB set).

Eleos pages data at 4 KB (or 1 KB sub-page) granularity; ShieldStore
protects each entry individually.  On a 500 MB get-only working set the
paper finds Eleos competitive at 1-4 KB values but 7x (512 B) and 40x
(16 B) slower than ShieldStore — page-granular protection wastes most
of its work on small items.
"""

from __future__ import annotations

from repro.baselines import EleosStore
from repro.core.config import shield_opt
from repro.core.store import ShieldStore
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    SEED,
    EcallFrontend,
    TableResult,
    make_machine,
    preload,
    run_workload,
)
from repro.sim.cycles import GB, MB
from repro.workloads import DataSpec, OperationStream, RD100_Z

VALUE_SIZES = (16, 512, 1024, 4096)
WORKING_SET_MB = 500


def _pairs_for(value_size: int, scale: float) -> int:
    wss = int(WORKING_SET_MB * MB * scale)
    return max(64, wss // (16 + value_size + 49))


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 16 (throughput vs value size, 100% get)."""
    rows = []
    for value_size in VALUE_SIZES:
        data = DataSpec(f"v{value_size}", 16, value_size)
        pairs = _pairs_for(value_size, scale)
        stream = OperationStream(RD100_Z, data, pairs, seed=seed)

        machine = make_machine(1, scale, seed=seed)
        eleos = EleosStore(
            machine,
            page_bytes=1024 if value_size <= 1024 else 4096,
            pool_limit_bytes=int(2 * GB * scale),
            num_buckets=max(64, int(pairs * 0.8)),
        )
        preload(eleos, stream)
        eleos_result = run_workload(eleos, "eleos", stream, ops)

        machine2 = make_machine(1, scale, seed=seed)
        config = shield_opt(
            num_buckets=max(64, pairs), num_mac_hashes=max(64, pairs // 2),
            scale=scale,
        )
        shield = EcallFrontend(ShieldStore(config, machine=machine2))
        stream2 = OperationStream(RD100_Z, data, pairs, seed=seed)
        preload(shield, stream2)
        shield_result = run_workload(shield, "shieldopt", stream2, ops)

        rows.append(
            [
                value_size,
                eleos_result.kops,
                shield_result.kops,
                shield_result.kops / eleos_result.kops,
            ]
        )
    notes = [
        "100% get, 500MB working set (scaled); Eleos uses 1KB sub-pages for "
        "values <= 1KB, 4KB pages above",
        "paper: ShieldStore 40x (16B) and 7x (512B) faster; Eleos "
        "competitive at 1KB/4KB",
    ]
    return TableResult(
        "Figure 16",
        "Comparison with Eleos on various value sizes (500MB working set)",
        ["value (B)", "Eleos Kop/s", "ShieldOpt Kop/s", "shield/eleos"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
