"""Figure 13 — multi-core scalability, 1 to 4 threads.

Three panels in the paper: Memcached+Graphene and the Baseline stop
scaling at ~2 threads (serialized demand paging; Graphene's maintainer
thread even degrades at 4), while ShieldStore's hash-partitioned design
scales near-linearly (~330 Kop/s at 1 thread to ~1250 at 4 on the small
set).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    SEED,
    SYSTEM_BASELINE,
    SYSTEM_GRAPHENE,
    SYSTEM_SHIELDOPT,
    TableResult,
)
from repro.experiments.suite import average_kops, run_suite
from repro.workloads import SMALL, TABLE2_WORKLOADS

SYSTEMS = (SYSTEM_GRAPHENE, SYSTEM_BASELINE, SYSTEM_SHIELDOPT)
THREADS = (1, 2, 3, 4)


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 13 (Kop/s vs thread count, small data set)."""
    results = run_suite(
        list(SYSTEMS), [SMALL], list(THREADS), list(TABLE2_WORKLOADS),
        scale=scale, ops=ops, seed=seed,
    )
    rows = []
    for system in SYSTEMS:
        averages = [
            average_kops(results, system, SMALL.name, t, TABLE2_WORKLOADS)
            for t in THREADS
        ]
        scaling = averages[-1] / averages[0] if averages[0] else None
        rows.append([system] + [round(a, 1) for a in averages] + [scaling])
    notes = [
        "averaged over all Table 2 workloads, small data set",
        "paper: ShieldOpt ~3.8x at 4 threads; Baseline/Graphene flat beyond 2 "
        "(Graphene degrades at 4: maintainer thread lock)",
    ]
    return TableResult(
        "Figure 13",
        "Performance scalability from 1 to 4 threads",
        ["system", "1T", "2T", "3T", "4T", "4T/1T"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
