"""Figure 3 — the naive SGX key-value store collapses beyond the EPC.

The §3.1 baseline stores its whole hash table in enclave memory.  While
the database fits the EPC the secure store runs within ~60% of the
insecure one; as the working set grows, demand paging dominates until
the store is ~134x slower at 4 GB.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    DEFAULT_SCALE,
    SEED,
    SYSTEM_BASELINE,
    SYSTEM_INSECURE,
    TableResult,
    make_machine,
    preload,
    run_workload,
)
from repro.sim.cycles import MB
from repro.workloads import OperationStream, RD50_U, DataSpec

WORKING_SET_MB = (16, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096)
# Figure 3 sweeps "database capacity"; entry shape mirrors the large set.
_DATA = DataSpec("fig3", 16, 512)
_ENTRY_BYTES = 16 + 16 + 512  # plain-table record


def _throughput(system_name: str, wss_bytes: int, scale: float, ops: int, seed: int) -> float:
    pairs = max(16, wss_bytes // _ENTRY_BYTES)
    machine = make_machine(1, scale, seed=seed, llc_exponent=1.0)
    # Size the bucket array for ~unit chain length, tracking the sweep.
    if system_name == SYSTEM_INSECURE:
        from repro.baselines import InsecureStore

        system = InsecureStore(machine, num_buckets=pairs)
    else:
        from repro.baselines import NaiveSgxStore
        from repro.experiments.common import EcallFrontend

        system = EcallFrontend(NaiveSgxStore(machine, num_buckets=pairs))
    stream = OperationStream(RD50_U, _DATA, pairs, seed=seed)
    preload(system, stream)
    result = run_workload(system, system_name, stream, ops, data_name=f"{wss_bytes}B")
    return result.kops


def run(scale: float = DEFAULT_SCALE, ops: int = 2000, seed: int = SEED) -> TableResult:
    """Regenerate Figure 3 (throughput vs database size, log scale)."""
    rows: List[list] = []
    for wss_mb in WORKING_SET_MB:
        wss = max(64 * _ENTRY_BYTES, int(wss_mb * MB * scale))
        insecure = _throughput(SYSTEM_INSECURE, wss, scale, ops, seed)
        baseline = _throughput(SYSTEM_BASELINE, wss, scale, ops, seed)
        rows.append([wss_mb, insecure, baseline, insecure / baseline if baseline else None])
    slowdown_4g = rows[-1][3]
    notes = [
        "columns are Kop/s of simulated time; RD50_U requests, 512B values",
        f"4GB slowdown = {slowdown_4g:.0f}x (paper: 134x)",
    ]
    return TableResult(
        "Figure 3",
        "Baseline key-value store performance w/ and w/o SGX",
        ["WSS (MB)", "NoSGX (Kop/s)", "Baseline (Kop/s)", "slowdown"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
