"""Figure 6 — extra heap allocator: OCALLs vs allocation granularity.

ShieldStore's custom allocator (§5.1) runs inside the enclave and fetches
untrusted memory in large chunks, one OCALL per chunk.  The paper sweeps
the sbrk granularity from 1 MB to 32 MB under RD50_Z on the small data
set: OCALL counts collapse as chunks grow, and throughput improves a few
percent; 16 MB is chosen as the default.

To keep the allocator under real churn, updated values vary in size
(as memcached workloads do), so every update reallocates its entry.
Chunk sizes are scaled with the data; the axis is labeled at paper scale.
"""

from __future__ import annotations

from repro.core.config import shield_opt
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_MAC_HASHES,
    PAPER_BUCKETS,
    PAPER_PAIRS,
    SEED,
    EcallFrontend,
    TableResult,
    make_machine,
    preload,
    run_workload,
    scaled,
)
from repro.core.store import ShieldStore
from repro.sim.cycles import MB
from repro.workloads import RD50_Z, DataSpec, OperationStream

CHUNK_MB = (1, 2, 4, 8, 16, 32)


class _ChurnDataSpec(DataSpec):
    """Small data set whose updated values change size (forces realloc)."""

    def value_bytes(self, index: int, version: int = 0) -> bytes:
        size = self.val_size + (version % 4) * 16
        seed = f"v{index}.{version}|".encode("ascii")
        reps = -(-size // len(seed))
        return (seed * reps)[:size]


_DATA = _ChurnDataSpec("fig6-small", 16, 16)


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 6 (# OCALLs and throughput vs chunk size)."""
    rows = []
    pairs = scaled(PAPER_PAIRS, scale)
    for chunk_mb in CHUNK_MB:
        chunk = max(8192, int(chunk_mb * MB * scale))
        machine = make_machine(1, scale, seed=seed)
        config = shield_opt(
            num_buckets=scaled(PAPER_BUCKETS, scale),
            num_mac_hashes=scaled(PAPER_MAC_HASHES, scale),
            heap_chunk_bytes=chunk,
            scale=scale,
        )
        store = ShieldStore(config, machine=machine)
        system = EcallFrontend(store)
        stream = OperationStream(RD50_Z, _DATA, pairs, seed=seed)
        preload(system, stream)
        ocalls_before = store.allocator.ocalls
        result = run_workload(system, "shieldopt", stream, ops, data_name="small")
        run_ocalls = store.allocator.ocalls - ocalls_before
        rows.append(
            [
                chunk_mb,
                run_ocalls,
                store.allocator.ocalls,
                result.kops,
                round(store.allocator.internal_fragmentation, 3),
            ]
        )
    notes = [
        "chunk sizes scaled with the data set; axis labeled at paper scale",
        "paper: OCALLs drop steeply to ~0 by 16MB; throughput gains a few %",
    ]
    return TableResult(
        "Figure 6",
        "Extra heap allocator: OCALLs and throughput vs allocation granularity",
        ["chunk (MB)", "OCALLs (run)", "OCALLs (total)", "Kop/s", "fragmentation"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
