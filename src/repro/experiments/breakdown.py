"""Per-operation cycle breakdown — where does each system spend time?

Not a figure from the paper, but the analysis behind all of them: the
Baseline drowns in demand-paging cycles while ShieldStore's budget goes
to crypto and untrusted-memory traffic.  The attribution comes from the
category counters every charge records (memory hierarchy, EPC faults,
crypto, boundary crossings; the remainder is software dispatch/hashing).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_PAIRS,
    SEED,
    SYSTEM_BASELINE,
    SYSTEM_SHIELDBASE,
    SYSTEM_SHIELDOPT,
    TableResult,
    build_system,
    make_machine,
    preload,
    run_workload,
    scaled,
)
from repro.workloads import LARGE, OperationStream, RD95_Z

SYSTEMS = (SYSTEM_BASELINE, SYSTEM_SHIELDBASE, SYSTEM_SHIELDOPT)


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Cycle breakdown per operation, RD95_Z on the large data set."""
    rows = []
    for name in SYSTEMS:
        machine = make_machine(1, scale, seed=seed)
        system = build_system(name, machine, scale)
        stream = OperationStream(RD95_Z, LARGE, scaled(PAPER_PAIRS, scale), seed=seed)
        preload(system, stream)
        result = run_workload(system, name, stream, ops, data_name="large")
        counters = machine.counters
        total = machine.clock.elapsed_cycles()
        categorized = (
            counters.mem_cycles
            + counters.fault_cycles
            + counters.crypto_cycles
            + counters.crossing_cycles
        )
        software = max(0.0, total - categorized)
        rows.append(
            [
                name,
                result.kops,
                total / ops,
                100 * counters.fault_cycles / total,
                100 * counters.mem_cycles / total,
                100 * counters.crypto_cycles / total,
                100 * counters.crossing_cycles / total,
                100 * software / total,
            ]
        )
    notes = [
        "RD95_Z, large data set, 1 thread; percentages of total cycles",
        "expected: Baseline dominated by paging; ShieldStore by crypto + "
        "untrusted memory traffic; ShieldOpt trims both vs ShieldBase",
    ]
    return TableResult(
        "Breakdown",
        "Per-operation cycle attribution by subsystem",
        ["system", "Kop/s", "cycles/op", "faults %", "memory %", "crypto %",
         "crossings %", "software %"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
