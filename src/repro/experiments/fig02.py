"""Figure 2 — memory access latencies with and without SGX.

The paper's microbenchmark issues one random read or write per 4 KB page
of a working set swept from 16 MB to 4 GB, under three placements:
``NoSGX`` (plain DRAM), ``SGX_Enclave`` (enclave memory — EPC paging
beyond ~93 MB) and ``SGX_Unprotected`` (untrusted memory accessed from
inside the enclave).

Expected shape: NoSGX and SGX_Unprotected stay flat (~100 ns);
SGX_Enclave reads run ~5.7x NoSGX while the set fits the EPC, then climb
to ~578x (reads) / ~685x (writes) at 4 GB.
"""

from __future__ import annotations

import random
from typing import List

from repro.experiments.common import (
    DEFAULT_SCALE,
    SEED,
    TableResult,
)
from repro.sim.cycles import MB, PAGE_SIZE
from repro.sim.enclave import Enclave
from repro.sim.memory import REGION_ENCLAVE, REGION_UNTRUSTED

WORKING_SET_MB = (16, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096)
MODES = ("NoSGX", "SGX_Enclave", "SGX_Unprotected")
_MEASUREMENT = bytes([2] * 32)


def _measure(
    mode: str, write: bool, wss_bytes: int, scale: float, accesses: int, seed: int
) -> float:
    """Average ns per random page access for one (mode, r/w, wss) cell."""
    # The paper's pointer-chasing microbenchmark is built so that "most
    # of the accesses cause cache misses" (§2.1): its working sets dwarf
    # the on-chip caches.  A scaled run cannot keep WSS >> LLC at the
    # small end of the sweep, so this experiment models the
    # cache-defeating access pattern with a minimal LLC.
    from dataclasses import replace

    from repro.sim.cycles import DEFAULT_COST_MODEL
    from repro.sim.enclave import Machine

    cost = replace(DEFAULT_COST_MODEL.scaled(scale, 1.0), llc_bytes=4096)
    machine = Machine(cost, num_threads=1, seed=seed)
    if mode == "NoSGX":
        ctx = machine.context(0, in_enclave=False)
        region = REGION_UNTRUSTED
    elif mode == "SGX_Unprotected":
        Enclave(machine, _MEASUREMENT)
        ctx = machine.context(0, in_enclave=True)
        region = REGION_UNTRUSTED
    else:
        Enclave(machine, _MEASUREMENT)
        ctx = machine.context(0, in_enclave=True)
        region = REGION_ENCLAVE
    base = machine.memory.alloc(wss_bytes, region, materialize=False)
    pages = max(1, wss_bytes // PAGE_SIZE)
    rng = random.Random(seed + 7)
    # Warm-up: when the set fits the EPC, sweep every page so no cold
    # first-touch fault leaks into the measurement; when it does not fit,
    # random touches reach the steady-state residency mix.
    def poke(page: int) -> None:
        # Random offset within the page: the paper's pointer chase does
        # not reuse cachelines, so neither should the model.
        offset = rng.randrange(0, PAGE_SIZE - 8)
        machine.memory.touch(ctx, base + page * PAGE_SIZE + offset, 8, write=write)

    if pages <= machine.epc.capacity_pages:
        for page in range(pages):
            poke(page)
    else:
        for _ in range(min(3 * pages, 4 * accesses)):
            poke(rng.randrange(pages))
    machine.reset_measurement()
    for _ in range(accesses):
        poke(rng.randrange(pages))
    return machine.elapsed_us() * 1000.0 / accesses


def run(
    scale: float = DEFAULT_SCALE, accesses: int = 2000, seed: int = SEED
) -> TableResult:
    """Regenerate Figure 2 (latency per operation, ns, log-scale axis)."""
    headers = ["WSS (MB)"] + [f"{m} {rw}" for rw in ("read", "write") for m in MODES]
    rows: List[list] = []
    for wss_mb in WORKING_SET_MB:
        wss = max(PAGE_SIZE, int(wss_mb * MB * scale))
        row: List = [wss_mb]
        for write in (False, True):
            for mode in MODES:
                row.append(_measure(mode, write, wss, scale, accesses, seed))
        rows.append(row)
    baseline_read = rows[0][1]
    top_read = rows[-1][2]
    top_write = rows[-1][5]
    notes = [
        f"scale={scale}: working sets and EPC both scaled; axis labels at paper scale",
        f"4GB enclave read = {top_read / baseline_read:.0f}x NoSGX (paper: 578x)",
        f"4GB enclave write = {top_write / rows[0][4]:.0f}x NoSGX (paper: 685x)",
    ]
    return TableResult("Figure 2", "Memory access latencies w/ and w/o SGX", headers, rows, notes)


if __name__ == "__main__":
    print(run().format())
