"""Shared experiment harness: system registry, runner, table formatting.

Every table/figure module builds on three pieces:

* :func:`build_system` — construct any of the evaluated systems
  (Baseline, Memcached+Graphene, ShieldBase, ShieldOpt, Eleos, ...) on a
  scaled machine;
* :func:`preload` / :func:`run_workload` — replay a deterministic
  :class:`~repro.workloads.ycsb.OperationStream` against a system and
  measure *simulated* throughput (Kop/s of simulated wall time);
* :class:`TableResult` — the rows a bench prints, mirroring the paper's
  table/figure layout, with a ``paper`` column of expected values where
  the paper states them.

Scaling: ``scale`` shrinks pair counts and EPC capacity together
(DESIGN.md §2), so miss ratios and crossovers match the paper while runs
stay laptop-sized.  Benchmarks read ``REPRO_BENCH_SCALE`` /
``REPRO_BENCH_OPS`` to trade fidelity for speed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.baselines import (
    EleosStore,
    GrapheneMemcachedStore,
    InsecureStore,
    NaiveSgxStore,
)
from repro.core import (
    PartitionedShieldStore,
    ShieldStore,
    shield_base,
    shield_opt,
)
from repro.core.config import StoreConfig
from repro.sim.cycles import DEFAULT_COST_MODEL, MB
from repro.sim.enclave import Machine
from repro.workloads import (
    OP_APPEND,
    OP_GET,
    OP_RMW,
    OP_SET,
    OperationStream,
)

# Paper-scale structure sizes (§6.1/§6.2 defaults).
PAPER_BUCKETS = 8_000_000
PAPER_MAC_HASHES = 4_000_000
PAPER_PAIRS = 10_000_000

DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.005"))
DEFAULT_OPS = int(os.environ.get("REPRO_BENCH_OPS", "3000"))
SEED = 2019


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a paper-sized count, keeping at least ``minimum``."""
    return max(minimum, int(value * scale))


def make_machine(
    threads: int, scale: float, seed: int = SEED, llc_exponent: float = 0.5
) -> Machine:
    """A machine whose EPC/LLC are scaled to match scaled working sets.

    ``llc_exponent`` follows :meth:`CostModel.scaled`: 0.5 preserves
    zipfian LLC coverage for the workload suites; memory microbenchmarks
    that need working sets >> all caches pass 1.0.
    """
    return Machine(
        DEFAULT_COST_MODEL.scaled(scale, llc_exponent),
        num_threads=threads,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# system registry
# ---------------------------------------------------------------------------
SYSTEM_INSECURE = "insecure"
SYSTEM_BASELINE = "baseline"
SYSTEM_GRAPHENE = "memcached+graphene"
SYSTEM_SHIELDBASE = "shieldbase"
SYSTEM_SHIELDOPT = "shieldopt"
SYSTEM_SHIELDOPT_CACHE = "shieldopt+cache"
SYSTEM_ELEOS = "eleos"

ALL_KV_SYSTEMS = (
    SYSTEM_GRAPHENE,
    SYSTEM_BASELINE,
    SYSTEM_SHIELDBASE,
    SYSTEM_SHIELDOPT,
)


def shield_config(
    scale: float,
    optimized: bool = True,
    buckets: int = PAPER_BUCKETS,
    mac_hashes: int = PAPER_MAC_HASHES,
    **overrides,
) -> StoreConfig:
    """A paper-shaped ShieldStore config at the given scale."""
    nb = scaled(buckets, scale)
    nh = min(scaled(mac_hashes, scale), nb)
    factory = shield_opt if optimized else shield_base
    return factory(num_buckets=nb, num_mac_hashes=nh, scale=scale, **overrides)


def build_system(
    name: str,
    machine: Machine,
    scale: float,
    config: Optional[StoreConfig] = None,
    standalone: bool = True,
    **kwargs,
):
    """Instantiate a named system on ``machine`` at ``scale``.

    ``standalone=True`` wraps enclave-hosted systems with the
    per-request :class:`EcallFrontend` (the networked experiments use
    :mod:`repro.net` front-ends instead and pass ``standalone=False``).
    """
    threads = machine.clock.num_threads
    plain_buckets = scaled(PAPER_BUCKETS, scale)
    if name == SYSTEM_INSECURE:
        return InsecureStore(machine, num_buckets=plain_buckets, **kwargs)
    if name == SYSTEM_BASELINE:
        system = NaiveSgxStore(machine, num_buckets=plain_buckets, **kwargs)
    elif name == SYSTEM_GRAPHENE:
        system = GrapheneMemcachedStore(machine, num_buckets=plain_buckets, **kwargs)
    elif name == SYSTEM_ELEOS:
        kwargs.setdefault("pool_limit_bytes", int(2 * 1024 * MB * scale))
        system = EleosStore(machine, **kwargs)
    elif name in (SYSTEM_SHIELDBASE, SYSTEM_SHIELDOPT, SYSTEM_SHIELDOPT_CACHE):
        if config is None:
            config = shield_config(scale, optimized=name != SYSTEM_SHIELDBASE)
        if name == SYSTEM_SHIELDOPT_CACHE and config.cache_bytes == 0:
            cache = max(64 * 1024, int(machine.cost.epc_effective_bytes * 0.5))
            config = config.with_(cache_bytes=cache)
        if threads > 1:
            system = PartitionedShieldStore(config, machine=machine)
        else:
            system = ShieldStore(config, machine=machine)
    else:
        raise ValueError(f"unknown system {name!r}")
    return EcallFrontend(system) if standalone else system


# ---------------------------------------------------------------------------
# running workloads
# ---------------------------------------------------------------------------
class EcallFrontend:
    """Per-request enclave entry for standalone runs.

    The paper's standalone harness generates requests in the untrusted
    server loop; each request enters the enclave through an ECALL
    (~8,000 cycles, §2.2).  Enclave-hosted systems (Baseline, Graphene,
    ShieldStore) are wrapped with this; the insecure store is not.
    """

    def __init__(self, system):
        self.system = system
        self.machine = system.machine

    def _cross(self, key: bytes) -> None:
        thread = serving_thread(self.system, key)
        self.machine.clock.threads[thread].charge(self.machine.cost.ecall_cycles)
        self.machine.counters.ecalls += 1
        self.machine.counters.crossing_cycles += self.machine.cost.ecall_cycles

    def get(self, key: bytes) -> bytes:
        self._cross(key)
        return self.system.get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self._cross(key)
        self.system.set(key, value)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        self._cross(key)
        return self.system.append(key, suffix)

    def delete(self, key: bytes) -> None:
        self._cross(key)
        self.system.delete(key)

    def increment(self, key: bytes, delta: int = 1) -> int:
        self._cross(key)
        return self.system.increment(key, delta)

    def contains(self, key: bytes) -> bool:
        self._cross(key)
        return self.system.contains(key)

    def __len__(self) -> int:
        return len(self.system)


def serving_thread(system, key: bytes) -> int:
    """Which simulated thread serves ``key`` on ``system``."""
    from repro.util import fnv1a

    if isinstance(system, EcallFrontend):
        return serving_thread(system.system, key)
    if isinstance(system, PartitionedShieldStore):
        # Works in every mode, including processes (where the partition
        # store itself lives in a worker and cannot be handed out).
        return system.partition_index_of(bytes(key))
    if isinstance(system, ShieldStore):
        return system.thread_id
    return fnv1a(bytes(key)) % system.machine.clock.num_threads


@dataclass
class RunResult:
    """Throughput measurement of one (system, workload, data) cell."""

    system: str
    workload: str
    data: str
    threads: int
    ops: int
    elapsed_us: float
    counters: dict = field(default_factory=dict)

    @property
    def kops(self) -> float:
        """Simulated throughput in Kop/s."""
        if self.elapsed_us <= 0:
            return float("inf")
        return self.ops / self.elapsed_us * 1000.0


def preload(system, stream: OperationStream) -> None:
    """Insert the data set (not part of the measurement)."""
    for op in stream.load_operations():
        system.set(op.key, op.value)


def _dispatch(system, op) -> None:
    if op.op == OP_GET:
        system.get(op.key)
    elif op.op == OP_SET:
        system.set(op.key, op.value)
    elif op.op == OP_APPEND:
        system.append(op.key, op.value)
    elif op.op == OP_RMW:
        system.get(op.key)
        system.set(op.key, op.value)
    else:
        raise ValueError(f"unknown operation {op.op!r}")


def run_workload(
    system,
    system_name: str,
    stream: OperationStream,
    num_ops: int,
    data_name: str = "",
    scheduler=None,
    warmup: Optional[int] = None,
) -> RunResult:
    """Replay ``num_ops`` requests and measure simulated throughput.

    ``warmup`` requests (default: equal to ``num_ops``) run first,
    unmeasured, so the EPC residency reaches the workload's steady state
    — the preload phase leaves it full of recently-inserted pages, not
    the workload-hot ones.  ``scheduler`` is an optional
    :class:`~repro.core.persistence.SnapshotScheduler` ticked per op.
    """
    machine: Machine = system.machine
    if warmup is None:
        warmup = num_ops
    for op in stream.operations(warmup):
        _dispatch(system, op)
    machine.reset_measurement()
    executed = 0
    for op in stream.operations(num_ops):
        _dispatch(system, op)
        executed += 1
        if scheduler is not None:
            scheduler.tick(is_write=op.op != OP_GET)
    return RunResult(
        system=system_name,
        workload=stream.spec.name,
        data=data_name,
        threads=machine.clock.num_threads,
        ops=executed,
        elapsed_us=machine.clock.elapsed_cycles() / (machine.cost.freq_ghz * 1000.0),
        counters=machine.counters.snapshot(),
    )


# ---------------------------------------------------------------------------
# result tables
# ---------------------------------------------------------------------------
@dataclass
class TableResult:
    """A printable reproduction of one paper table/figure."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        """Render an aligned ASCII table."""
        str_rows = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in str_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> List:
        """Extract one column by header name (for assertions)."""
        idx = list(self.headers).index(header)
        return [row[idx] for row in self.rows]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    if cell is None:
        return "-"
    return str(cell)


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean, used to average across workloads like the paper's bars."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
