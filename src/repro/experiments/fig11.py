"""Figure 11 — per-workload throughput on the large data set.

Absolute Kop/s for every Table 2 workload across the four systems.
Paper observations: ShieldBase ~7.3x over Baseline on the RD50 mixes,
rising to ~11x as the get ratio grows (RD95/RD100); ShieldOpt adds a
further margin on top.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_KV_SYSTEMS,
    DEFAULT_OPS,
    DEFAULT_SCALE,
    SEED,
    SYSTEM_BASELINE,
    SYSTEM_SHIELDBASE,
    TableResult,
)
from repro.experiments.suite import run_suite
from repro.workloads import LARGE, TABLE2_WORKLOADS


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 11 (Kop/s per workload, large data set)."""
    results = run_suite(
        list(ALL_KV_SYSTEMS), [LARGE], [1], list(TABLE2_WORKLOADS),
        scale=scale, ops=ops, seed=seed,
    )
    rows = []
    for spec in TABLE2_WORKLOADS:
        row = [spec.name]
        for system in ALL_KV_SYSTEMS:
            result = results[(system, LARGE.name, 1, spec.name)]
            row.append(result.kops if result else None)
        base = results[(SYSTEM_BASELINE, LARGE.name, 1, spec.name)].kops
        shieldbase = results[(SYSTEM_SHIELDBASE, LARGE.name, 1, spec.name)].kops
        row.append(shieldbase / base)
        rows.append(row)
    notes = [
        "paper: ShieldBase/Baseline ~7.3x on RD50 mixes, ~11x on RD95/RD100",
    ]
    return TableResult(
        "Figure 11",
        "Throughput per workload, large data set (1 thread)",
        ["workload"] + [f"{s} Kop/s" for s in ALL_KV_SYSTEMS] + ["shieldbase/baseline"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
