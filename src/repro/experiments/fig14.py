"""Figure 14 — cumulative optimization ablation.

Starting from ShieldBase, the §5 optimizations are added one at a time:
``+KeyOPT`` (the 1-byte key hint), ``+HeapAlloc`` (the extra heap
allocator), ``+MACBucket`` (contiguous MAC arrays).  The paper sweeps
two bucket counts (1M, 8M) x two key counts (10M, 40M), i.e. average
chain lengths of 1.25, 5, 10 and 40: the longer the chains, the more
KeyOPT and MACBucket matter.
"""

from __future__ import annotations

from repro.core.config import StoreConfig, shield_base
from repro.core.store import ShieldStore
from repro.experiments.common import (
    DEFAULT_SCALE,
    SEED,
    EcallFrontend,
    TableResult,
    make_machine,
    preload,
    run_workload,
    scaled,
)
from repro.workloads import LARGE, OperationStream, RD50_Z, RD95_Z, RD100_Z

WORKLOADS = (RD50_Z, RD95_Z, RD100_Z)
GRID = (
    ("8M buckets / 10M entries", 8_000_000, 10_000_000),
    ("8M buckets / 40M entries", 8_000_000, 40_000_000),
    ("1M buckets / 10M entries", 1_000_000, 10_000_000),
    ("1M buckets / 40M entries", 1_000_000, 40_000_000),
)

CONFIG_STEPS = ("ShieldBase", "+KeyOPT", "+HeapAlloc", "+MACBucket")


def _config_for(step: str, num_buckets: int, num_hashes: int, scale: float) -> StoreConfig:
    config = shield_base(num_buckets, num_hashes, scale=scale)
    if step in ("+KeyOPT", "+HeapAlloc", "+MACBucket"):
        config = config.with_(key_hint_enabled=True, two_step_search=True)
    if step in ("+HeapAlloc", "+MACBucket"):
        config = config.with_(use_extra_heap=True)
    if step == "+MACBucket":
        config = config.with_(mac_bucketing=True)
    return config


def run(scale: float = DEFAULT_SCALE / 2, ops: int = 800, seed: int = SEED) -> TableResult:
    """Regenerate Figure 14 (throughput per optimization step).

    Runs at half the default scale: the 40M-entry cells preload 4x the
    pairs, and chain lengths (1.25-40) depend only on the pair:bucket
    ratio, which scaling preserves.
    """
    cells = {}
    for label, buckets_paper, entries_paper in GRID:
        num_buckets = scaled(buckets_paper, scale)
        num_pairs = scaled(entries_paper, scale)
        num_hashes = min(scaled(4_000_000, scale), num_buckets)
        for step in CONFIG_STEPS:
            # One store per (grid, step), reused across the workloads —
            # preloading 100k-pair / chain-40 configurations dominates
            # the runtime otherwise.
            machine = make_machine(1, scale, seed=seed)
            config = _config_for(step, num_buckets, num_hashes, scale)
            system = EcallFrontend(ShieldStore(config, machine=machine))
            load = OperationStream(WORKLOADS[0], LARGE, num_pairs, seed=seed)
            preload(system, load)
            for spec in WORKLOADS:
                stream = OperationStream(spec, LARGE, num_pairs, seed=seed + 13)
                result = run_workload(
                    system, step, stream, ops, data_name=label, warmup=ops // 2
                )
                cells[(label, spec.name, step)] = result.kops
    rows = []
    for label, _buckets, _entries in GRID:
        for spec in WORKLOADS:
            rows.append(
                [label, spec.name]
                + [cells[(label, spec.name, step)] for step in CONFIG_STEPS]
            )
    notes = [
        "chain lengths 1.25 / 5 / 10 / 40 as in the paper",
        "paper: gains are small at chain 1.25 (HeapAlloc still helps RD50); "
        "KeyOPT and MACBucket grow with chain length",
    ]
    return TableResult(
        "Figure 14",
        "Effect of optimizations over bucket counts and key counts (Kop/s)",
        ["grid", "workload"] + list(CONFIG_STEPS),
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
