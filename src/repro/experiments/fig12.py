"""Figure 12 — server-side append operations.

Appends exercise the server-side-computation advantage of §3.2: the
enclave reads, extends, re-encrypts and re-MACs the value without the
client round-tripping plaintext.  The paper runs 95/5 and 50/50
read/append mixes; improvements over the Baseline span 1.7-16x and are
*smaller* under zipfian skew because repeated appends balloon a few hot
values whose en/decryption then dominates both systems.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_KV_SYSTEMS,
    DEFAULT_OPS,
    DEFAULT_SCALE,
    SEED,
    SYSTEM_BASELINE,
    SYSTEM_SHIELDOPT,
    TableResult,
)
from repro.experiments.suite import run_suite
from repro.workloads import APPEND_WORKLOADS, LARGE


def run(
    scale: float = DEFAULT_SCALE,
    ops: int = DEFAULT_OPS,
    seed: int = SEED,
    append_chunk: int = 64,
) -> TableResult:
    """Regenerate Figure 12 (append-mix throughput)."""
    results = run_suite(
        list(ALL_KV_SYSTEMS), [LARGE], [1], list(APPEND_WORKLOADS),
        scale=scale, ops=ops, seed=seed,
    )
    rows = []
    for spec in APPEND_WORKLOADS:
        row = [spec.name, spec.description]
        for system in ALL_KV_SYSTEMS:
            result = results[(system, LARGE.name, 1, spec.name)]
            row.append(result.kops if result else None)
        base = results[(SYSTEM_BASELINE, LARGE.name, 1, spec.name)].kops
        opt = results[(SYSTEM_SHIELDOPT, LARGE.name, 1, spec.name)].kops
        row.append(opt / base)
        rows.append(row)
    notes = [
        "paper: ShieldStore 1.7-16x over Baseline; smallest gains under "
        "zipfian skew (hot values balloon, crypto on large values dominates)",
    ]
    return TableResult(
        "Figure 12",
        "Performance with append operations (RD:Read / AP:Append)",
        ["workload", "mix"] + [f"{s} Kop/s" for s in ALL_KV_SYSTEMS] + ["opt/baseline"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
