"""Suite runner: preload once per (system, data, threads), sweep workloads.

Figures 10, 11, 13 and 18 all measure the same grid — systems x data
sizes x thread counts x Table 2 workloads — so this module materializes
each store once and replays every workload against it, resetting the
measurement clocks in between (the paper preloads 10M pairs once per
configuration too).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import UnsupportedConfigError
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_PAIRS,
    SEED,
    RunResult,
    build_system,
    make_machine,
    preload,
    run_workload,
    scaled,
)
from repro.workloads import DataSpec, OperationStream, WorkloadSpec

Key = Tuple[str, str, int, str]  # (system, data, threads, workload)


def run_suite(
    systems: Sequence[str],
    data_specs: Sequence[DataSpec],
    thread_counts: Sequence[int],
    workloads: Sequence[WorkloadSpec],
    scale: float = DEFAULT_SCALE,
    ops: int = DEFAULT_OPS,
    pairs: Optional[int] = None,
    seed: int = SEED,
    system_kwargs: Optional[dict] = None,
) -> Dict[Key, RunResult]:
    """Measure every grid cell; returns results keyed by cell."""
    num_pairs = pairs if pairs is not None else scaled(PAPER_PAIRS, scale)
    results: Dict[Key, RunResult] = {}
    for system_name in systems:
        for data in data_specs:
            for threads in thread_counts:
                machine = make_machine(threads, scale, seed=seed)
                kwargs = (system_kwargs or {}).get(system_name, {})
                try:
                    system = build_system(system_name, machine, scale, **kwargs)
                    load_stream = OperationStream(
                        workloads[0], data, num_pairs, seed=seed
                    )
                    preload(system, load_stream)
                except UnsupportedConfigError:
                    for spec in workloads:
                        results[(system_name, data.name, threads, spec.name)] = None
                    continue
                for spec in workloads:
                    stream = OperationStream(spec, data, num_pairs, seed=seed + 13)
                    results[
                        (system_name, data.name, threads, spec.name)
                    ] = run_workload(
                        system, system_name, stream, ops, data_name=data.name
                    )
    return results


def average_kops(
    results: Dict[Key, RunResult],
    system: str,
    data: str,
    threads: int,
    workloads: Iterable[WorkloadSpec],
) -> float:
    """Arithmetic-mean Kop/s across workloads (how Fig. 10 aggregates)."""
    values = []
    for spec in workloads:
        result = results.get((system, data, threads, spec.name))
        if result is not None:
            values.append(result.kops)
    return sum(values) / len(values) if values else 0.0
