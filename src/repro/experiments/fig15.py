"""Figure 15 — trade-off in the number of in-enclave MAC hashes.

More MAC hashes shrink bucket sets (cheaper integrity verification per
operation) but enlarge the in-enclave array (§4.3).  At 8M hashes the
array alone is 128 MB — beyond the EPC — so it starts demand-paging and
throughput collapses; the paper picks 4M as the default.  Bucket count
is fixed at 8M; all three data sizes are measured.
"""

from __future__ import annotations

from repro.core.config import shield_opt
from repro.core.store import ShieldStore
from repro.experiments.common import (
    DEFAULT_OPS,
    DEFAULT_SCALE,
    PAPER_BUCKETS,
    PAPER_PAIRS,
    SEED,
    EcallFrontend,
    TableResult,
    make_machine,
    preload,
    run_workload,
    scaled,
)
from repro.workloads import LARGE, MEDIUM, SMALL, OperationStream, RD95_Z

MAC_HASH_COUNTS = (1_000_000, 2_000_000, 4_000_000, 8_000_000)


def run(scale: float = DEFAULT_SCALE, ops: int = DEFAULT_OPS, seed: int = SEED) -> TableResult:
    """Regenerate Figure 15 (throughput vs number of MAC hashes)."""
    rows = []
    num_buckets = scaled(PAPER_BUCKETS, scale)
    pairs = scaled(PAPER_PAIRS, scale)
    for data in (SMALL, MEDIUM, LARGE):
        row = [data.name]
        for hashes_paper in MAC_HASH_COUNTS:
            num_hashes = min(scaled(hashes_paper, scale), num_buckets)
            machine = make_machine(1, scale, seed=seed)
            config = shield_opt(num_buckets, num_hashes, scale=scale)
            system = EcallFrontend(ShieldStore(config, machine=machine))
            stream = OperationStream(RD95_Z, data, pairs, seed=seed)
            preload(system, stream)
            result = run_workload(system, "shieldopt", stream, ops, data_name=data.name)
            row.append(result.kops)
        rows.append(row)
    notes = [
        "columns are 1M/2M/4M/8M MAC hashes = 16/32/64/128 MB of enclave "
        "memory at paper scale (EPC holds ~93 MB)",
        "paper: small gains 1M->4M (+5..13%), collapse at 8M (EPC overflow)",
    ]
    return TableResult(
        "Figure 15",
        "ShieldStore throughput vs number of MAC hashes (8M buckets)",
        ["data set", "1M (16MB)", "2M (32MB)", "4M (64MB)", "8M (128MB)"],
        rows,
        notes,
    )


if __name__ == "__main__":
    print(run().format())
