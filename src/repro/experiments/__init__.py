"""Experiment modules: one per paper table/figure.

Each module exposes ``run(scale=..., ops=..., seed=...) -> TableResult``
regenerating the rows/series of its table or figure, with the paper's
expectations recorded in the result notes.  ``python -m
repro.experiments.<name>`` prints the table directly.
"""

from repro.experiments import (
    breakdown,
    fig02,
    fig03,
    fig06,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    table1,
)
from repro.experiments.common import RunResult, TableResult

ALL_EXPERIMENTS = {
    "table1": table1,
    "breakdown": breakdown,
    "fig02": fig02,
    "fig03": fig03,
    "fig06": fig06,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
}

__all__ = ["ALL_EXPERIMENTS", "RunResult", "TableResult"]
