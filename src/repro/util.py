"""Small shared utilities."""

from __future__ import annotations

import zlib

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a(data: bytes) -> int:
    """Deterministic 64-bit FNV-1a over bytes.

    Used wherever the simulation needs a fast non-cryptographic hash;
    Python's builtin ``hash`` is randomized per process and would make
    runs irreproducible.
    """
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def stable_seed(*parts) -> int:
    """Deterministic 32-bit seed from strings/ints (crc32-folded)."""
    acc = 0
    for part in parts:
        if isinstance(part, int):
            part = str(part)
        acc = zlib.crc32(str(part).encode("utf-8"), acc)
    return acc & 0x7FFFFFFF
