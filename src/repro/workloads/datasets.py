"""Data-size configurations (paper Table 3) and key/value materialization.

The paper preloads 10 million pairs per data set: *small* (16 B keys,
16 B values, 320 MB), *medium* (16 B/128 B, 1.3 GB) and *large*
(16 B/512 B, 5.2 GB) — all past the 128 MB EPC.  Benchmarks shrink the
pair count by the global scale knob while keeping key/value sizes, so
per-entry costs stay faithful and only aggregate pressure scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

PAPER_NUM_PAIRS = 10_000_000


@dataclass(frozen=True)
class DataSpec:
    """One row of Table 3."""

    name: str
    key_size: int
    val_size: int

    def key_bytes(self, index: int) -> bytes:
        """Deterministic fixed-width key for item ``index``.

        Zero-padded so distinct indices can never collide (``k1`` padded
        with trailing zeros would equal ``k10`` padded one shorter).
        """
        raw = b"k" + str(index).zfill(self.key_size - 1).encode("ascii")
        if len(raw) > self.key_size:
            raise ValueError(f"index {index} does not fit a {self.key_size}B key")
        return raw

    def value_bytes(self, index: int, version: int = 0) -> bytes:
        """Deterministic value for item ``index`` at write ``version``."""
        seed = f"v{index}.{version}|".encode("ascii")
        reps = -(-self.val_size // len(seed))
        return (seed * reps)[: self.val_size]

    def working_set_bytes(self, num_pairs: int) -> int:
        """Approximate untrusted bytes the data set occupies."""
        from repro.core.entry import entry_total_size

        return num_pairs * entry_total_size(self.key_size, self.val_size)


SMALL = DataSpec("small", 16, 16)
MEDIUM = DataSpec("medium", 16, 128)
LARGE = DataSpec("large", 16, 512)

DATA_SPECS: Dict[str, DataSpec] = {d.name: d for d in (SMALL, MEDIUM, LARGE)}


def data_spec(name: str) -> DataSpec:
    """Look up a Table 3 configuration by name."""
    try:
        return DATA_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown data spec {name!r}; known: {sorted(DATA_SPECS)}"
        ) from None
