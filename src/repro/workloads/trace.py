"""Operation-trace recording and replay.

The evaluation's comparability rests on every system seeing identical
request sequences.  Streams are already deterministic from seeds, but a
trace file makes the guarantee portable: record a workload once, replay
it against any store (here or elsewhere), and diff the results.

Format (one line per op, text, diff-friendly)::

    # shieldstore-trace v1 workload=RD95_Z pairs=1000
    set <hexkey> <hexvalue>
    get <hexkey>
    ...
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import ReproError
from repro.workloads.ycsb import OP_APPEND, OP_GET, OP_RMW, OP_SET, Operation

_HEADER_PREFIX = "# shieldstore-trace v1"
_OPS_WITH_VALUE = {OP_SET, OP_APPEND, OP_RMW}


class TraceError(ReproError):
    """Malformed trace file."""


def record_trace(
    operations: Iterable[Operation],
    sink: Union[str, TextIO],
    metadata: Optional[dict] = None,
) -> int:
    """Write operations to ``sink`` (path or file object); returns count."""
    own = isinstance(sink, str)
    fh = open(sink, "w", encoding="ascii") if own else sink
    try:
        meta = " ".join(f"{k}={v}" for k, v in (metadata or {}).items())
        fh.write(f"{_HEADER_PREFIX} {meta}".rstrip() + "\n")
        count = 0
        for op in operations:
            if op.op in _OPS_WITH_VALUE:
                fh.write(f"{op.op} {op.key.hex()} {(op.value or b'').hex()}\n")
            else:
                fh.write(f"{op.op} {op.key.hex()}\n")
            count += 1
        return count
    finally:
        if own:
            fh.close()


def read_trace(source: Union[str, TextIO]) -> Iterator[Operation]:
    """Parse a trace back into operations (validates as it goes)."""
    own = isinstance(source, str)
    fh = open(source, "r", encoding="ascii") if own else source
    try:
        header = fh.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise TraceError("missing trace header")
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(" ")
            op = parts[0]
            try:
                if op in _OPS_WITH_VALUE:
                    if len(parts) != 3:
                        raise ValueError("expected op key value")
                    yield Operation(op, bytes.fromhex(parts[1]), bytes.fromhex(parts[2]))
                elif op == OP_GET:
                    if len(parts) != 2:
                        raise ValueError("expected op key")
                    yield Operation(op, bytes.fromhex(parts[1]))
                else:
                    raise ValueError(f"unknown op {op!r}")
            except ValueError as exc:
                raise TraceError(f"line {line_no}: {exc}") from None
    finally:
        if own:
            fh.close()


def replay_trace(
    operations: Iterable[Operation], system
) -> List[Optional[bytes]]:
    """Drive a store with a trace; returns the per-op observable results.

    Two systems replaying the same trace must produce identical result
    lists — the cross-system equivalence check the test suite uses.
    """
    from repro.errors import KeyNotFoundError

    results: List[Optional[bytes]] = []
    for op in operations:
        try:
            if op.op == OP_GET:
                results.append(system.get(op.key))
            elif op.op == OP_SET:
                system.set(op.key, op.value)
                results.append(b"")
            elif op.op == OP_APPEND:
                results.append(system.append(op.key, op.value))
            elif op.op == OP_RMW:
                value = system.get(op.key)
                system.set(op.key, op.value)
                results.append(value)
            else:
                raise TraceError(f"unknown op {op.op!r}")
        except KeyNotFoundError:
            results.append(None)
    return results


def trace_to_string(operations: Iterable[Operation], metadata=None) -> str:
    """Convenience: record into a string."""
    buffer = io.StringIO()
    record_trace(operations, buffer, metadata)
    return buffer.getvalue()
