"""The canonical YCSB core workloads A-F, mapped onto this suite.

The paper's Table 2 mixes are derived from YCSB; this module exposes the
original lettered catalog so downstream users can ask for "workload B"
directly, including **E (short scans)** — which the paper's hash index
cannot serve but the :class:`~repro.ext.rangestore.RangeShieldStore`
extension can.

| letter | mix | distribution | Table 2 analogue |
|---|---|---|---|
| A | 50% read / 50% update | zipfian | RD50_Z |
| B | 95% read / 5% update | zipfian | RD95_Z |
| C | 100% read | zipfian | RD100_Z |
| D | 95% read / 5% insert | latest | RD95_L |
| E | 95% scan / 5% insert | zipfian | (needs ordered index) |
| F | 50% read / 50% RMW | zipfian | RMW50_Z |
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.util import stable_seed
from repro.workloads.datasets import DataSpec
from repro.workloads.distributions import make_distribution
from repro.workloads.ycsb import (
    OP_SET,
    RD50_Z,
    RD95_L,
    RD95_Z,
    RD100_Z,
    RMW50_Z,
    Operation,
    OperationStream,
    WorkloadSpec,
)

OP_SCAN = "scan"

LETTER_SPECS: Dict[str, WorkloadSpec] = {
    "A": RD50_Z,
    "B": RD95_Z,
    "C": RD100_Z,
    "D": RD95_L,
    "F": RMW50_Z,
}


@dataclass(frozen=True)
class ScanOperation:
    """A YCSB-E short range scan: up to ``count`` keys from ``start``."""

    op: str
    start_key: bytes
    count: int


class ScanStream:
    """YCSB workload E: 95% short scans, 5% inserts, zipfian starts.

    Only stores with an ordered index can serve it; see
    :func:`run_scan_stream`.
    """

    def __init__(
        self,
        data: DataSpec,
        num_pairs: int,
        seed: int = 2019,
        max_scan_length: int = 100,
    ):
        self.data = data
        self.num_pairs = num_pairs
        self.max_scan_length = max_scan_length
        self._rng = random.Random(stable_seed(seed, "ycsb-e"))
        self._dist = make_distribution("zipfian", num_pairs, seed=stable_seed(seed, "e-dist"))
        self._next_insert = num_pairs

    def load_operations(self) -> Iterator[Operation]:
        for index in range(self.num_pairs):
            yield Operation(
                OP_SET, self.data.key_bytes(index), self.data.value_bytes(index)
            )

    def operations(self, count: int) -> Iterator[object]:
        for _ in range(count):
            if self._rng.random() < 0.95:
                start = self._dist.next()
                length = self._rng.randint(1, self.max_scan_length)
                yield ScanOperation(OP_SCAN, self.data.key_bytes(start), length)
            else:
                index = self._next_insert
                self._next_insert += 1
                yield Operation(
                    OP_SET,
                    self.data.key_bytes(index),
                    self.data.value_bytes(index),
                )


def letter_stream(
    letter: str, data: DataSpec, num_pairs: int, seed: int = 2019
):
    """Build the stream for a YCSB letter (A-F)."""
    letter = letter.upper()
    if letter == "E":
        return ScanStream(data, num_pairs, seed=seed)
    try:
        spec = LETTER_SPECS[letter]
    except KeyError:
        raise ValueError(f"unknown YCSB workload {letter!r} (A-F)") from None
    return OperationStream(spec, data, num_pairs, seed=seed)


def run_scan_stream(store, stream: ScanStream, count: int) -> int:
    """Drive an ordered store with workload E; returns rows scanned.

    ``store`` must provide ``range(start, end)`` and ``set`` — i.e. a
    :class:`~repro.ext.rangestore.RangeShieldStore` (or the LSM).
    """
    rows = 0
    for op in stream.operations(count):
        if isinstance(op, ScanOperation):
            for i, _pair in enumerate(store.range(op.start_key, b"\xff" * 16)):
                rows += 1
                if i + 1 >= op.count:
                    break
        else:
            store.set(op.key, op.value)
    return rows
