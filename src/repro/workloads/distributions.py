"""Key-popularity distributions for workload generation.

The paper's workloads (Table 2) draw keys from three distributions, the
same ones YCSB defines:

* **uniform** — every key equally likely;
* **zipfian** — skewness 0.99 (and 0.5 for the Fig. 12 append mix),
  using the Gray et al. bounded-Zipfian algorithm YCSB implements, with
  rank scrambling so hot keys spread across the key space;
* **latest** — zipfian over recency: the most recently inserted keys are
  the most popular (paper's RD95_L).
"""

from __future__ import annotations

import random

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 little-endian bytes (YCSB's scramble)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class UniformGenerator:
    """Uniform over ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int = 0):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianGenerator:
    """Bounded Zipfian (Gray et al.), as implemented by YCSB.

    ``theta`` is the skew (YCSB default 0.99).  ``scrambled=True`` maps
    ranks through FNV so popular items are spread over the key space.
    """

    def __init__(
        self,
        item_count: int,
        theta: float = 0.99,
        seed: int = 0,
        scrambled: bool = True,
    ):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self.scrambled = scrambled
        self._rng = random.Random(seed)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        # For item_count <= 2 the closed form for eta degenerates to 0/0
        # (zeta(n) == zeta(2) when n == 2).  It is also never consulted:
        # with n <= 2, u * zetan < 1 + 0.5**theta for every u in [0, 1),
        # so the first two branches of _next_rank cover all ranks.
        denom = 1 - self._zeta2 / self._zetan
        self._eta = (
            0.0
            if denom == 0
            else (1 - (2.0 / item_count) ** (1 - theta)) / denom
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _next_rank(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self._eta * u - self._eta + 1) ** self._alpha)

    def next(self) -> int:
        rank = min(self._next_rank(), self.item_count - 1)
        if self.scrambled:
            return fnv1a_64(rank) % self.item_count
        return rank


class LatestGenerator:
    """Zipfian over recency: item ``count-1`` is the hottest (YCSB latest)."""

    def __init__(self, item_count: int, theta: float = 0.99, seed: int = 0):
        self._zipf = ZipfianGenerator(item_count, theta, seed, scrambled=False)
        self.item_count = item_count

    def set_count(self, item_count: int) -> None:
        """Grow the population after inserts (recency window moves)."""
        if item_count != self.item_count:
            self._zipf = ZipfianGenerator(
                item_count, self._zipf.theta, seed=0, scrambled=False
            )
            self.item_count = item_count

    def next(self) -> int:
        rank = self._zipf._next_rank()
        idx = self.item_count - 1 - min(rank, self.item_count - 1)
        return idx


def make_distribution(name: str, item_count: int, seed: int = 0, theta: float = 0.99):
    """Factory keyed by the Table 2 distribution names."""
    if name == "uniform":
        return UniformGenerator(item_count, seed)
    if name == "zipfian":
        return ZipfianGenerator(item_count, theta, seed)
    if name == "latest":
        return LatestGenerator(item_count, theta, seed)
    raise ValueError(f"unknown distribution {name!r}")
