"""YCSB-style workload mixes (paper Table 2) and operation streams.

Each :class:`WorkloadSpec` is one Table 2 row: an operation mix over a
key-popularity distribution.  :class:`OperationStream` turns a spec plus
a :class:`~repro.workloads.datasets.DataSpec` into a deterministic
sequence of ``Operation`` records that any store implementation can
replay — that is how every system in the evaluation sees identical
request sequences.
"""

from __future__ import annotations

import random

from repro.util import stable_seed
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.workloads.datasets import DataSpec
from repro.workloads.distributions import make_distribution

OP_GET = "get"
OP_SET = "set"
OP_APPEND = "append"
OP_RMW = "rmw"  # read-modify-write: get followed by set of the same key


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload mix (a row of Table 2 or the Fig. 12 append mixes)."""

    name: str
    description: str
    read_ratio: float
    write_ratio: float = 0.0
    append_ratio: float = 0.0
    rmw_ratio: float = 0.0
    distribution: str = "uniform"
    theta: float = 0.99

    def __post_init__(self):
        total = self.read_ratio + self.write_ratio + self.append_ratio + self.rmw_ratio
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"ratios of {self.name} must sum to 1, got {total}")


# -- Table 2 -----------------------------------------------------------------
RD50_U = WorkloadSpec("RD50_U", "Update heavy (50:50)", 0.5, 0.5, distribution="uniform")
RD95_U = WorkloadSpec("RD95_U", "Read mostly (95:5)", 0.95, 0.05, distribution="uniform")
RD100_U = WorkloadSpec("RD100_U", "Read only (100:0)", 1.0, distribution="uniform")
RD50_Z = WorkloadSpec("RD50_Z", "Update heavy (50:50)", 0.5, 0.5, distribution="zipfian")
RD95_Z = WorkloadSpec("RD95_Z", "Read mostly (95:5)", 0.95, 0.05, distribution="zipfian")
RD100_Z = WorkloadSpec("RD100_Z", "Read only (100:0)", 1.0, distribution="zipfian")
RD95_L = WorkloadSpec("RD95_L", "Read latest (95:5)", 0.95, 0.05, distribution="latest")
RMW50_Z = WorkloadSpec(
    "RMW50_Z", "Read-modify-write (50:50)", 0.5, rmw_ratio=0.5, distribution="zipfian"
)

TABLE2_WORKLOADS = (
    RD50_U, RD95_U, RD100_U, RD50_Z, RD95_Z, RD100_Z, RD95_L, RMW50_Z,
)

# -- Fig. 12 append mixes ------------------------------------------------------
AP5_Z99 = WorkloadSpec(
    "AP5_Z99", "95% read / 5% append, zipf 0.99", 0.95, append_ratio=0.05,
    distribution="zipfian", theta=0.99,
)
AP5_Z50 = WorkloadSpec(
    "AP5_Z50", "95% read / 5% append, zipf 0.5", 0.95, append_ratio=0.05,
    distribution="zipfian", theta=0.5,
)
AP5_U = WorkloadSpec(
    "AP5_U", "95% read / 5% append, uniform", 0.95, append_ratio=0.05,
    distribution="uniform",
)
AP50_U = WorkloadSpec(
    "AP50_U", "50% read / 50% append, uniform", 0.5, append_ratio=0.5,
    distribution="uniform",
)
APPEND_WORKLOADS = (AP5_Z99, AP5_Z50, AP5_U, AP50_U)

WORKLOADS: Dict[str, WorkloadSpec] = {
    w.name: w for w in TABLE2_WORKLOADS + APPEND_WORKLOADS
}


def workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by Table 2 / Fig. 12 name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


@dataclass(frozen=True)
class Operation:
    """One replayable request."""

    op: str
    key: bytes
    value: Optional[bytes] = None


class OperationStream:
    """Deterministic request sequence for one (workload, data set) pair."""

    def __init__(
        self,
        spec: WorkloadSpec,
        data: DataSpec,
        num_pairs: int,
        seed: int = 2019,
        append_chunk: int = 16,
    ):
        self.spec = spec
        self.data = data
        self.num_pairs = num_pairs
        self.append_chunk = append_chunk
        self._rng = random.Random(stable_seed(seed, spec.name, "mix"))
        self._dist = make_distribution(
            spec.distribution,
            num_pairs,
            seed=stable_seed(seed, spec.name, "dist"),
            theta=spec.theta,
        )
        self._versions: Dict[int, int] = {}

    def load_operations(self) -> Iterator[Operation]:
        """The preload phase: insert every pair once."""
        for index in range(self.num_pairs):
            yield Operation(
                OP_SET, self.data.key_bytes(index), self.data.value_bytes(index)
            )

    def _next_value(self, index: int) -> bytes:
        version = self._versions.get(index, 0) + 1
        self._versions[index] = version
        return self.data.value_bytes(index, version)

    def operations(self, count: int) -> Iterator[Operation]:
        """``count`` requests drawn from the workload mix."""
        spec = self.spec
        for _ in range(count):
            index = self._dist.next()
            key = self.data.key_bytes(index)
            r = self._rng.random()
            if r < spec.read_ratio:
                yield Operation(OP_GET, key)
            elif r < spec.read_ratio + spec.write_ratio:
                yield Operation(OP_SET, key, self._next_value(index))
            elif r < spec.read_ratio + spec.write_ratio + spec.append_ratio:
                yield Operation(OP_APPEND, key, b"A" * self.append_chunk)
            else:
                yield Operation(OP_RMW, key, self._next_value(index))
