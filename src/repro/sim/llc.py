"""Shared last-level cache model.

The i7-7700's 8 MB L3 is the reason skewed workloads stay fast even when
the backing structure pages or decrypts expensively: a line resident in
the LLC is served on-chip — no DRAM access, no MEE, no EPC fault (SGX
data is plaintext inside the cache hierarchy, §2.1).  The model is a
plain LRU over 64-byte line tags, shared by all threads of a machine.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.cycles import CACHELINE, CostModel


class LLCache:
    """LRU tag store for the shared last-level cache."""

    def __init__(self, cost: CostModel):
        self.capacity_lines = max(16, cost.llc_bytes // CACHELINE)
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one line tag; returns True on hit."""
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        if len(lines) >= self.capacity_lines:
            lines.popitem(last=False)
        lines[line] = None
        self.misses += 1
        return False

    def flush(self) -> None:
        """Drop all cached tags."""
        self._lines.clear()
