"""Simulated SGX platform: memory regions, EPC paging, enclave runtime.

This package is the substrate substitution documented in DESIGN.md §2:
a discrete cycle-accounting model of the SGX behaviours the paper
measures (EPC demand paging, MEE overheads, enclave crossings), plus
functional equivalents of sealing, monotonic counters, and remote
attestation.  The :class:`~repro.sim.attacker.Attacker` realizes the
paper's threat model against untrusted memory.
"""

from repro.sim.attacker import Attacker
from repro.sim.attestation import (
    AttestationService,
    DHKeyPair,
    Quote,
    attested_handshake,
    derive_session_suite,
)
from repro.sim.clock import MachineClock, PagingSerializer, ThreadClock
from repro.sim.counters import MonotonicCounterService
from repro.sim.cycles import (
    CACHELINE,
    DEFAULT_COST_MODEL,
    GB,
    KB,
    MB,
    PAGE_SIZE,
    CostModel,
    CycleCounters,
)
from repro.sim.enclave import Enclave, ExecContext, Machine
from repro.sim.epc import EPCDevice
from repro.sim.faults import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)
from repro.sim.memory import (
    ENCLAVE_BASE,
    REGION_ENCLAVE,
    REGION_UNTRUSTED,
    UNTRUSTED_BASE,
    Allocation,
    SimMemory,
)
from repro.sim.sealing import SealingService

__all__ = [
    "Allocation",
    "Attacker",
    "AttestationService",
    "CACHELINE",
    "CostModel",
    "CycleCounters",
    "DEFAULT_COST_MODEL",
    "DHKeyPair",
    "ENCLAVE_BASE",
    "Enclave",
    "EPCDevice",
    "ExecContext",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "GB",
    "INJECTION_POINTS",
    "KB",
    "MB",
    "Machine",
    "MachineClock",
    "MonotonicCounterService",
    "PAGE_SIZE",
    "PagingSerializer",
    "Quote",
    "REGION_ENCLAVE",
    "REGION_UNTRUSTED",
    "SealingService",
    "SimMemory",
    "ThreadClock",
    "UNTRUSTED_BASE",
    "attested_handshake",
    "derive_session_suite",
]
