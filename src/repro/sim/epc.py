"""Enclave Page Cache simulation: residency, eviction, demand paging.

Real SGX backs enclave memory with a fixed reservation of encrypted DRAM
(the EPC).  When an enclave touches a page that is not resident, the
kernel driver evicts a victim (EWB: encrypt + MAC the page out to normal
DRAM) and loads the target (ELDU: decrypt + verify), with an enclave exit
along the way — the "significant performance penalty" of paper §2.1.

The simulation keeps an LRU residency set of 4 KB page numbers.  Faults
are charged through the machine's :class:`~repro.sim.clock.PagingSerializer`
because the driver serializes them across threads, which is what breaks
the baseline's multi-core scaling (Fig. 13).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.clock import PagingSerializer, ThreadClock
from repro.sim.cycles import PAGE_SIZE, CostModel, CycleCounters


class EPCDevice:
    """LRU model of the Enclave Page Cache.

    Parameters
    ----------
    cost:
        Platform cost model; supplies capacity and fault costs.
    paging:
        The machine-wide fault serializer.
    counters:
        Machine-wide event counters (faults/evictions recorded here).
    """

    def __init__(self, cost: CostModel, paging: PagingSerializer, counters: CycleCounters):
        self.cost = cost
        self.paging = paging
        self.counters = counters
        self.capacity_pages = max(1, cost.epc_effective_bytes // PAGE_SIZE)
        # page -> [dirty, accessed].  Eviction is a clock sweep over the
        # accessed bits, approximating the Linux SGX driver's reclaim:
        # pages touched between hand visits survive, so frequently-reused
        # structures stay resident once the system reaches its low-fault
        # equilibrium.
        self._resident: "OrderedDict[int, list]" = OrderedDict()

    # -- introspection ---------------------------------------------------
    @property
    def resident_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._resident)

    def is_resident(self, page: int) -> bool:
        """True when ``page`` would not fault on the next touch."""
        return page in self._resident

    # -- main entry point --------------------------------------------------
    def touch(self, clock: ThreadClock, page: int, write: bool) -> bool:
        """Record an access to ``page``; returns True when it faulted.

        A resident touch refreshes LRU position (and dirtiness).  A miss
        charges the serialized fault cost to ``clock`` and may evict the
        least-recently-used page.
        """
        resident = self._resident
        state = resident.get(page)
        if state is not None:
            if write:
                state[0] = True
            state[1] = True  # accessed since the last clock-hand visit
            return False
        # Demand paging: clock sweep with accessed bits for the victim.
        # Pages touched between hand visits (e.g. the hot bucket array of
        # an in-enclave hash table) are spared; cold pages are reclaimed.
        while len(resident) >= self.capacity_pages:
            victim, (v_dirty, v_accessed) = next(iter(resident.items()))
            if v_accessed:
                resident.move_to_end(victim)
                resident[victim][1] = False
            else:
                del resident[victim]
                self.counters.epc_evictions += 1
                break
        resident[page] = [write, True]
        cost = (
            self.cost.page_fault_write_cycles
            if write
            else self.cost.page_fault_read_cycles
        )
        # Only the kernel path of a fault (AEX, IPI/TLB shootdown, driver
        # locks) serializes across cores; the EWB/ELDU page crypto runs on
        # the faulting core.  Total cost is unchanged for one thread.
        serialized = cost * self.cost.fault_serial_fraction
        self.paging.service(clock, serialized)
        clock.charge(cost - serialized)
        self.counters.epc_faults += 1
        self.counters.fault_cycles += cost
        return True

    def flush(self) -> None:
        """Drop all residency state (e.g. after enclave teardown)."""
        self._resident.clear()
