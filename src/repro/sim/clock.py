"""Per-thread cycle clocks and the global paging serializer.

The paper's scalability results (Fig. 13) hinge on two structural facts:

* ShieldStore threads own disjoint hash partitions, so they never
  synchronize and their clocks advance independently;
* the baseline's EPC page faults are serviced by the kernel SGX driver,
  which serializes them — so adding threads beyond two buys nothing
  ("demand paging causes significant serialization of thread execution").

We model that with one :class:`ThreadClock` per simulated worker plus a
:class:`PagingSerializer` shared by all threads of a machine: a fault
begins no earlier than the end of the previous fault, whichever thread
raised it.  Run wall-time is the max over thread clocks.
"""

from __future__ import annotations

from typing import List


class ThreadClock:
    """Monotonic cycle counter for one simulated worker thread."""

    __slots__ = ("thread_id", "cycles")

    def __init__(self, thread_id: int = 0):
        self.thread_id = thread_id
        self.cycles = 0.0

    def charge(self, cycles: float) -> None:
        """Advance this thread's clock by ``cycles`` (must be >= 0)."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.cycles += cycles

    def advance_to(self, cycles: float) -> None:
        """Move the clock forward to an absolute time (no-op if behind)."""
        if cycles > self.cycles:
            self.cycles = cycles

    def __repr__(self) -> str:
        return f"ThreadClock(thread_id={self.thread_id}, cycles={self.cycles:.0f})"


class PagingSerializer:
    """Serializes demand-paging faults across all threads of one machine.

    Modeled as a capacity bound rather than strict reservations: the
    resource performs serialized sections one at a time, so after N
    sections totalling W cycles, no requester can be past time W.  Each
    service charges its cost to the caller and then floors the caller's
    clock at the cumulative serialized work — a single thread is never
    penalized (its own clock already contains all its sections), while
    multiple threads cannot collectively exceed the resource's rate.
    (A strict last-reservation model would act as a barrier that syncs
    every thread to the fastest one, which over-serializes.)
    """

    __slots__ = ("work_cycles", "serviced_faults")

    def __init__(self) -> None:
        self.work_cycles = 0.0
        self.serviced_faults = 0

    def service(self, clock: ThreadClock, cost_cycles: float) -> None:
        """Charge a serialized section and apply the capacity bound."""
        self.work_cycles += cost_cycles
        clock.charge(cost_cycles)
        clock.advance_to(self.work_cycles)
        self.serviced_faults += 1

    def reset(self) -> None:
        """Forget all ordering state (new measurement epoch)."""
        self.work_cycles = 0.0
        self.serviced_faults = 0


class MachineClock:
    """The set of thread clocks making up one simulated machine."""

    def __init__(self, num_threads: int = 1):
        if num_threads < 1:
            raise ValueError("need at least one thread")
        self.threads: List[ThreadClock] = [ThreadClock(i) for i in range(num_threads)]
        self.paging = PagingSerializer()

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def elapsed_cycles(self) -> float:
        """Wall-clock of the machine: the slowest thread's clock."""
        return max(t.cycles for t in self.threads)

    def total_cpu_cycles(self) -> float:
        """Sum of per-thread work (for utilization accounting)."""
        return sum(t.cycles for t in self.threads)

    def reset(self) -> None:
        """Zero every thread clock and the paging serializer."""
        for t in self.threads:
            t.cycles = 0.0
        self.paging.reset()
