"""SGX monotonic counter service (rollback defense for snapshots).

Real SGX exposes monotonic counters through the platform services enclave
backed by non-volatile flash; increments are notoriously slow (tens of
milliseconds) and the flash wears out — which is exactly why the paper's
persistence is snapshot-based rather than per-operation logged (§4.4,
§7 "Weak persistency support").

The simulated service keeps counters in a dict and optionally persists
them to a JSON file so restart-and-rollback tests can exercise the
defense.  Increments charge the (large) platform-service latency.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.errors import RollbackError
from repro.sim.enclave import ExecContext


class MonotonicCounterService:
    """Per-platform monotonic counters with optional file backing."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._counters: Dict[str, int] = {}
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                self._counters = {k: int(v) for k, v in json.load(fh).items()}

    def _persist(self) -> None:
        if self.path is not None:
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(self._counters, fh)
            os.replace(tmp, self.path)

    def create(self, name: str) -> int:
        """Create counter ``name`` at zero (idempotent); returns its value."""
        if name not in self._counters:
            self._counters[name] = 0
            self._persist()
        return self._counters[name]

    def read(self, name: str) -> int:
        """Current value of counter ``name`` (creating it if needed)."""
        return self._counters.get(name, 0)

    def increment(self, ctx: Optional[ExecContext], name: str) -> int:
        """Increment and persist; charges the platform-service latency."""
        if ctx is not None:
            ctx.charge_us(ctx.machine.cost.monotonic_counter_us)
        value = self._counters.get(name, 0) + 1
        self._counters[name] = value
        self._persist()
        return value

    def check_not_rolled_back(self, name: str, claimed: int) -> None:
        """Raise :class:`RollbackError` when ``claimed`` is stale."""
        current = self.read(name)
        if claimed < current:
            raise RollbackError(
                f"snapshot counter {claimed} is older than platform counter "
                f"{current} for {name!r}: rollback attack detected"
            )
