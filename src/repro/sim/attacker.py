"""The adversary of the paper's threat model (§3.3).

The attacker controls privileged software and has physical access to
DRAM: it can read and modify any byte of *untrusted* memory (cold-boot,
bus probing, malicious kernel), but the processor package is trusted, so
enclave memory is out of reach — attempting it raises
:class:`~repro.errors.EnclaveError`, mirroring the hardware abort.

Security tests drive this class to mount the attacks the paper defends
against: entry tampering, stale-entry replay, key-hint corruption
(availability, §5.4), and chain-pointer redirection into the enclave
range (§7).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import EnclaveError
from repro.sim.memory import REGION_UNTRUSTED, SimMemory


class Attacker:
    """Privileged adversary with full access to untrusted memory."""

    def __init__(self, memory: SimMemory):
        self._memory = memory

    def read(self, addr: int, size: int) -> bytes:
        """Dump untrusted bytes (refused — by hardware — for the enclave)."""
        if self._memory.in_enclave_range(addr):
            raise EnclaveError(
                "attacker cannot read enclave memory: EPC is encrypted and "
                "integrity-protected by the processor"
            )
        return self._memory.raw_read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Overwrite untrusted bytes."""
        if self._memory.in_enclave_range(addr):
            raise EnclaveError(
                "attacker cannot write enclave memory: the MEE would detect it"
            )
        self._memory.raw_write(addr, data)

    def flip_bit(self, addr: int, bit: int = 0) -> None:
        """Flip one bit at ``addr`` (classic tampering probe)."""
        byte = self.read(addr, 1)[0]
        self.write(addr, bytes([byte ^ (1 << (bit & 7))]))

    def snapshot(self, addr: int, size: int) -> Tuple[int, bytes]:
        """Record bytes for a later replay."""
        return addr, self.read(addr, size)

    def replay(self, recorded: Tuple[int, bytes]) -> None:
        """Write previously recorded bytes back (rollback/replay attack)."""
        addr, data = recorded
        self.write(addr, data)

    def untrusted_allocations(self) -> List[Tuple[int, int]]:
        """Enumerate (base, size) of all untrusted allocations — the
        attacker can scan physical memory, so layout is not a secret."""
        return sorted(
            (a.base, a.size)
            for a in self._memory._allocs.values()
            if a.region == REGION_UNTRUSTED
        )
