"""Facade mirroring the Intel SGX SDK calls the paper names.

ShieldStore's enclave code calls ``sgx_aes_ctr_encrypt``,
``sgx_rijndael128_cmac`` and ``sgx_read_rand`` (paper §4.2).  This module
provides functions of the same shape: they perform the real cryptographic
work via a :class:`~repro.crypto.suite.CipherSuite` and charge the
corresponding cycle costs to the calling execution context.
"""

from __future__ import annotations

from repro.crypto.suite import CipherSuite
from repro.errors import EnclaveError
from repro.sim.enclave import ExecContext


def _require_enclave(ctx: ExecContext, fn: str) -> None:
    if not ctx.in_enclave:
        raise EnclaveError(f"{fn} may only be called from inside an enclave")


def sgx_read_rand(ctx: ExecContext, nbytes: int) -> bytes:
    """Random bytes from the (deterministic, seeded) platform RNG."""
    _require_enclave(ctx, "sgx_read_rand")
    ctx.charge_rand(nbytes)
    return bytes(ctx.machine.rng.getrandbits(8) for _ in range(nbytes))


def sgx_aes_ctr_encrypt(
    ctx: ExecContext, suite: CipherSuite, iv_ctr: bytes, plaintext: bytes
) -> bytes:
    """Counter-mode encryption with combined IV/counter handling."""
    _require_enclave(ctx, "sgx_aes_ctr_encrypt")
    ctx.charge_aes(len(plaintext))
    return suite.encrypt(iv_ctr, plaintext)


def sgx_aes_ctr_decrypt(
    ctx: ExecContext, suite: CipherSuite, iv_ctr: bytes, ciphertext: bytes
) -> bytes:
    """Counter-mode decryption (CTR is symmetric; kept for API parity)."""
    _require_enclave(ctx, "sgx_aes_ctr_decrypt")
    ctx.charge_aes(len(ciphertext))
    ctx.machine.counters.decryptions += 1
    return suite.decrypt(iv_ctr, ciphertext)


def sgx_rijndael128_cmac(ctx: ExecContext, suite: CipherSuite, message: bytes) -> bytes:
    """128-bit keyed MAC over ``message``."""
    _require_enclave(ctx, "sgx_rijndael128_cmac")
    ctx.charge_cmac(len(message))
    return suite.mac(message)
