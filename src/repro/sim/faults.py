"""shieldfault: deterministic fault injection at every boundary crossing.

ShieldStore's design lives on hostile boundaries — untrusted memory,
OCALLs, worker pipes, a network the §2.3 threat model hands to the
adversary outright.  This module makes every failure mode of those
boundaries *reproducible on demand*: each crossing in the codebase
calls :func:`check` with a **named injection point**, and an installed
:class:`FaultPlan` decides — from a seeded, scripted schedule — whether
that particular crossing drops, delays, tampers, crashes or errors.

Nothing here simulates enclave semantics; it scripts the *host's*
misbehavior, which the threat model already grants.  With no plan
installed every hook is a near-free ``None`` check, so production paths
pay one attribute load.

Injection points (the registry)
-------------------------------
========================  ====================================================
point                     crossing
========================  ====================================================
``tcp.client.connect``    client TCP connect + attested handshake
``tcp.client.send``       client -> server wire frame (handshake + requests)
``tcp.client.recv``       server -> client wire frame
``tcp.server.accept``     server accepting one connection
``tcp.server.send``       server -> client wire frame (replies)
``tcp.server.recv``       client -> server wire frame
``channel.client.seal``   SecureChannel.seal on a ``client``-role channel
``channel.client.open``   SecureChannel.open on a ``client``-role channel
``channel.server.seal``   SecureChannel.seal on a ``server``-role channel
``channel.server.open``   SecureChannel.open on a ``server``-role channel
``procpool.spawn``        parent spawning one partition worker process
``procpool.pipe.send``    parent -> worker sealed pipe frame (pipe data plane)
``procpool.pipe.recv``    worker -> parent sealed pipe frame (pipe data plane)
``shmring.write``         parent -> worker sealed shared-memory ring frame
``shmring.read``          worker -> parent sealed shared-memory ring frame
``shmring.doorbell``      ring readiness doorbell (drop = wake via poll only)
``snapshot.write``        SnapshotDaemon writing one checkpoint file
``snapshot.read``         reading a checkpoint file back from disk
``persistence.snapshot``  serializing a store into a snapshot blob
``persistence.restore``   restoring a store from a snapshot blob
``wal.append``            sealing one frame into a write-ahead-log segment
``wal.fsync``             group-commit fsync of a write-ahead-log segment
``wal.replay``            reading one WAL segment back during recovery
========================  ====================================================

Fault kinds
-----------
* ``delay``  — sleep ``delay_s`` at the crossing, then proceed
  (handled entirely inside :func:`check`);
* ``error``  — raise the exception class named by the rule's ``error``
  field (default ``OSError``), handled inside :func:`check`;
* ``tamper`` — flip ``flips`` bit(s) of the crossing's payload at
  rule-RNG-chosen positions; :func:`check` returns the mutated bytes
  and the call site sends/consumes them in place of the original;
* ``drop``   — the call site discards the payload (a sender skips the
  send, a receiver treats the frame as never having arrived);
* ``crash``  — the call site invokes its ``on_crash`` callback (kill
  the worker process, sever the socket, truncate the half-written
  file...) and then lets its ordinary failure handling observe the
  wreckage.  Sites without a callback get ``ConnectionResetError``;
* ``partition`` — cut the network between named node groups: the rule
  lists ``groups`` (e.g. ``[["a"], ["b", "c"]]``) and fires — as a
  ``drop`` — at every ``tcp.*`` crossing whose **link** connects nodes
  in *different* groups, until the partition heals (``heal_after_s``
  wall-clock seconds after the plan is installed, or an explicit
  ``plan.heal()``).  Call sites identify the edge by passing
  ``link=(local, peer)`` to :func:`check`; crossings without a link
  label are never partitioned.  Partition rules ignore the hit-schedule
  fields — a cut cable fails every packet, not every third one.

``drop`` and ``crash`` need site cooperation, so :func:`check` returns
a :class:`Hit` describing them; ``delay``/``error``/``tamper`` need
none beyond using the returned payload.

Determinism
-----------
Every rule owns a private ``random.Random`` seeded from the plan seed
and the rule's index, and its own hit counter; with a fixed seed and a
single-client drive the full fire sequence is reproducible run to run.
The plan is per-process: spawned partition workers do not inherit it
(their faults are injected from the parent side of the pipe, which is
where the §2.3 adversary sits anyway).
"""

from __future__ import annotations

import fnmatch
import json
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, SnapshotError, StoreError

INJECTION_POINTS = frozenset(
    {
        "tcp.client.connect",
        "tcp.client.send",
        "tcp.client.recv",
        "tcp.server.accept",
        "tcp.server.send",
        "tcp.server.recv",
        "channel.client.seal",
        "channel.client.open",
        "channel.server.seal",
        "channel.server.open",
        "procpool.spawn",
        "procpool.pipe.send",
        "procpool.pipe.recv",
        "shmring.write",
        "shmring.read",
        "shmring.doorbell",
        "snapshot.write",
        "snapshot.read",
        "persistence.snapshot",
        "persistence.restore",
        "wal.append",
        "wal.fsync",
        "wal.replay",
    }
)

FAULT_KINDS = ("drop", "delay", "tamper", "crash", "error", "partition")

# Exception classes a rule's ``error`` field may name.  Transport-ish
# classes for socket/pipe points, protocol/snapshot classes for codec
# and persistence points.
ERROR_CLASSES = {
    "OSError": OSError,
    "ConnectionError": ConnectionResetError,
    "TimeoutError": TimeoutError,
    "ProtocolError": ProtocolError,
    "SnapshotError": SnapshotError,
    "StoreError": StoreError,
}


class FaultPlanError(StoreError):
    """A fault plan is malformed (bad point, kind, or schedule)."""


@dataclass
class FaultRule:
    """One scripted fault: where, what, and on which hits.

    ``point`` is an ``fnmatch`` pattern over the registry (so
    ``tcp.client.*`` scripts every client-side crossing).  The schedule
    fields compose: a hit must clear ``after``, then fire if it is in
    ``hits``, or lands on an ``every`` multiple, or wins the seeded
    ``probability`` roll; a rule with no schedule fields fires on every
    hit.  ``limit`` caps total fires.
    """

    point: str
    kind: str
    hits: Optional[Sequence[int]] = None   # explicit 0-based hit indices
    every: Optional[int] = None            # fire each Nth hit (1-based)
    probability: Optional[float] = None    # seeded per-rule RNG roll
    after: int = 0                         # ignore this many leading hits
    limit: Optional[int] = None            # max total fires
    delay_s: float = 0.05                  # for ``delay``
    error: str = "OSError"                 # class name for ``error``
    flips: int = 1                         # bits flipped by ``tamper``
    groups: Optional[Sequence[Sequence[str]]] = None  # ``partition`` sides
    heal_after_s: Optional[float] = None   # ``partition`` scheduled heal

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not any(fnmatch.fnmatch(p, self.point) for p in INJECTION_POINTS):
            raise FaultPlanError(
                f"pattern {self.point!r} matches no registered injection "
                f"point; see repro.sim.faults.INJECTION_POINTS"
            )
        if self.kind == "partition":
            if not self.groups or len(self.groups) < 2:
                raise FaultPlanError(
                    "partition rules need 'groups': at least two lists "
                    "of node names"
                )
            for group in self.groups:
                if not group or not all(isinstance(n, str) for n in group):
                    raise FaultPlanError(
                        "each partition group must be a non-empty list "
                        "of node-name strings"
                    )
            matched = [
                p for p in INJECTION_POINTS if fnmatch.fnmatch(p, self.point)
            ]
            if any(not p.startswith("tcp.") for p in matched):
                raise FaultPlanError(
                    "partition rules only apply to tcp.* injection points "
                    "(links are labeled at the TCP layer)"
                )
            if self.heal_after_s is not None and self.heal_after_s < 0:
                raise FaultPlanError(
                    f"heal_after_s={self.heal_after_s} must be >= 0"
                )
        elif self.groups is not None or self.heal_after_s is not None:
            raise FaultPlanError(
                "'groups'/'heal_after_s' are only valid on partition rules"
            )
        if self.error not in ERROR_CLASSES:
            raise FaultPlanError(
                f"unknown error class {self.error!r}; "
                f"known: {sorted(ERROR_CLASSES)}"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability {self.probability} outside [0, 1]"
            )
        if self.every is not None and self.every <= 0:
            raise FaultPlanError(f"every={self.every} must be positive")
        if self.flips <= 0:
            raise FaultPlanError(f"flips={self.flips} must be positive")


@dataclass
class Hit:
    """What :func:`check` decided for one crossing."""

    kind: str
    point: str
    payload: Optional[bytes] = None


@dataclass
class _RuleState:
    """Mutable per-rule bookkeeping (separate so rules stay declarative)."""

    rng: random.Random
    hits: int = 0
    fires: int = 0


class FaultPlan:
    """A seeded, scripted schedule of boundary faults.

    Thread-safe: schedule decisions and counters sit behind one mutex,
    so concurrent handler threads draw from the same deterministic
    sequence (their interleaving is the only nondeterminism, and a
    single synchronous client removes even that).
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        for rule in self.rules:
            rule.validate()
        self._states = [
            _RuleState(rng=random.Random((seed * 1_000_003 + i) ^ 0xFA01F))
            for i, rule in enumerate(self.rules)
        ]
        self._mutex = threading.Lock()
        self.point_hits: Dict[str, int] = {}
        self.fired: Dict[Tuple[str, str], int] = {}
        # Partition lifecycle: scheduled heals count wall-clock seconds
        # from plan *activation* (install time), explicit heal() wins.
        self._activated_at: Optional[float] = None
        self._healed = False

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or "rules" not in data:
            raise FaultPlanError("fault plan must be an object with 'rules'")
        known = {f.name for f in FaultRule.__dataclass_fields__.values()}
        rules = []
        for i, raw in enumerate(data["rules"]):
            if not isinstance(raw, dict):
                raise FaultPlanError(f"rule {i} is not an object")
            unknown = set(raw) - known
            if unknown:
                raise FaultPlanError(
                    f"rule {i} has unknown field(s) {sorted(unknown)}"
                )
            try:
                rules.append(FaultRule(**raw))
            except TypeError as exc:
                raise FaultPlanError(f"rule {i}: {exc}") from None
        return cls(rules, seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- partition lifecycle -------------------------------------------------
    def activate(self) -> None:
        """Start the partition heal clocks (called by :func:`install`)."""
        with self._mutex:
            if self._activated_at is None:
                self._activated_at = time.monotonic()

    def heal(self) -> None:
        """Heal every partition rule immediately."""
        with self._mutex:
            self._healed = True

    def _partition_cuts(self, rule: FaultRule, link) -> bool:
        """True iff this un-healed partition rule severs ``link``."""
        if link is None or rule.groups is None or self._healed:
            return False
        if rule.heal_after_s is not None and self._activated_at is not None:
            if time.monotonic() - self._activated_at >= rule.heal_after_s:
                return False
        local, peer = link

        def side_of(name):
            for i, group in enumerate(rule.groups):
                if name in group:
                    return i
            return None

        local_side, peer_side = side_of(local), side_of(peer)
        return (
            local_side is not None
            and peer_side is not None
            and local_side != peer_side
        )

    # -- the decision --------------------------------------------------------
    def decide(
        self, point: str, link=None
    ) -> Optional[Tuple[FaultRule, _RuleState]]:
        """Count one hit at ``point``; first matching rule that fires wins."""
        with self._mutex:
            self.point_hits[point] = self.point_hits.get(point, 0) + 1
            for rule, state in zip(self.rules, self._states):
                if not fnmatch.fnmatch(point, rule.point):
                    continue
                if rule.kind == "partition":
                    # No schedule: a cut cable fails every crossing of
                    # the severed edge until the partition heals.
                    if not self._partition_cuts(rule, link):
                        continue
                    state.hits += 1
                    state.fires += 1
                    key = (point, rule.kind)
                    self.fired[key] = self.fired.get(key, 0) + 1
                    return rule, state
                index = state.hits
                state.hits += 1
                if index < rule.after:
                    continue
                if rule.limit is not None and state.fires >= rule.limit:
                    continue
                scheduled = rule.hits is None and rule.every is None and (
                    rule.probability is None
                )
                if rule.hits is not None and (index - rule.after) in set(rule.hits):
                    scheduled = True
                if rule.every is not None and (
                    (index - rule.after + 1) % rule.every == 0
                ):
                    scheduled = True
                if rule.probability is not None and (
                    state.rng.random() < rule.probability
                ):
                    scheduled = True
                if not scheduled:
                    continue
                state.fires += 1
                key = (point, rule.kind)
                self.fired[key] = self.fired.get(key, 0) + 1
                return rule, state
            return None

    @staticmethod
    def tamper_bytes(rule: FaultRule, state: _RuleState, payload: bytes) -> bytes:
        """Flip ``rule.flips`` bits of ``payload`` deterministically."""
        mutated = bytearray(payload)
        for _ in range(rule.flips):
            position = state.rng.randrange(len(mutated))
            mutated[position] ^= 1 << state.rng.randrange(8)
        return bytes(mutated)

    # -- reporting -----------------------------------------------------------
    def fires(self, point: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Total fires, optionally filtered by point and/or kind."""
        with self._mutex:
            return sum(
                count
                for (p, k), count in self.fired.items()
                if (point is None or p == point) and (kind is None or k == kind)
            )

    def snapshot(self) -> dict:
        """Stable dict of hits and fires for reports and ``repro stats``."""
        with self._mutex:
            report = {
                "seed": self.seed,
                "rules": len(self.rules),
                "hits": dict(sorted(self.point_hits.items())),
                "fires": {
                    f"{point}:{kind}": count
                    for (point, kind), count in sorted(self.fired.items())
                },
                "total_fires": sum(self.fired.values()),
            }
            partitions = [r for r in self.rules if r.kind == "partition"]
            if partitions:
                report["partitions"] = {
                    "rules": len(partitions),
                    "healed": self._healed,
                }
            return report


# ---------------------------------------------------------------------------
# the ambient (per-process) plane
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
_INSTALL_MUTEX = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process's active fault plan (replaces any)."""
    global _ACTIVE
    plan.activate()
    with _INSTALL_MUTEX:
        _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Remove the active plan; every hook returns to its no-op path."""
    global _ACTIVE
    with _INSTALL_MUTEX:
        _ACTIVE = None


def active() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan):
    """Install ``plan`` for the duration of a ``with`` block (tests)."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def check(
    point: str,
    payload: Optional[bytes] = None,
    on_crash=None,
    link=None,
) -> Optional[Hit]:
    """The hook every boundary crossing calls.

    Returns ``None`` to proceed normally (the overwhelmingly common
    case), or a :class:`Hit` the site must act on:

    * ``Hit("tamper", ...)`` — use ``hit.payload`` instead of the
      original bytes;
    * ``Hit("drop", ...)``   — discard the payload (skip the send /
      pretend the frame never arrived);
    * ``Hit("crash", ...)``  — ``on_crash`` already ran; proceed and
      let ordinary failure handling observe the damage.

    ``delay`` sleeps here; ``error`` raises here; ``crash`` with no
    ``on_crash`` raises ``ConnectionResetError``.  ``link`` is the
    ``(local, peer)`` node-name pair of the edge being crossed (TCP
    sites with named endpoints); ``partition`` rules fire only against
    it and surface as ``drop`` hits, so sites need no new handling.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    if point not in INJECTION_POINTS:
        raise FaultPlanError(f"unregistered injection point {point!r}")
    decision = plan.decide(point, link=link)
    if decision is None:
        return None
    rule, state = decision
    if rule.kind == "delay":
        time.sleep(rule.delay_s)
        return Hit("delay", point, payload)
    if rule.kind == "error":
        raise ERROR_CLASSES[rule.error](f"injected {rule.error} at {point}")
    if rule.kind == "tamper":
        if not payload:
            return None  # nothing to corrupt at this crossing
        return Hit("tamper", point, plan.tamper_bytes(rule, state, payload))
    if rule.kind == "crash":
        if on_crash is None:
            raise ConnectionResetError(f"injected crash at {point}")
        on_crash()
        return Hit("crash", point, payload)
    return Hit("drop", point, payload)


def fires(point: Optional[str] = None, kind: Optional[str] = None) -> int:
    """Fire count of the active plan (0 when none is installed)."""
    plan = _ACTIVE
    return 0 if plan is None else plan.fires(point, kind)
