"""Cycle cost model for the simulated SGX platform.

All performance in this reproduction comes from here: every simulated
event (a cacheline touched, a page fault served, an enclave boundary
crossed, a block encrypted) charges cycles to the acting thread's clock.
Constants are anchored to the paper's measurements on an i7-7700
(3.6 GHz):

* §2.1 / Fig. 2 — plain DRAM access ≈ 100 ns; EPC-resident enclave reads
  5.7x slower than NoSGX; fully-thrashing 4 GB enclave reads 578x and
  writes 685x slower, i.e. ≈ 57.8 µs / 68.5 µs per faulting access.
* §2.1 — effective EPC ≈ 90 MB of the 128 MB reservation; we use 93 MB.
* §2.2 — crossing the enclave boundary ≈ 8,000 cycles; HotCalls (Weisse
  et al., ISCA'17) ≈ 620 cycles.
* §4.2 — AES-CTR and CMAC run on AES-NI inside the enclave; we charge a
  fixed call setup plus a per-16-byte-block cost.

The defaults were then calibrated end-to-end so the headline ratios land
inside the paper's bands (ShieldOpt/Baseline 8-11x at 1 thread, 24-30x at
4 threads); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

CACHELINE = 64
PAGE_SIZE = 4096
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the simulated platform.  Immutable; use
    :meth:`scaled` or :func:`dataclasses.replace` to derive variants."""

    freq_ghz: float = 3.6

    # -- memory hierarchy ------------------------------------------------
    dram_access_cycles: int = 360          # ~100 ns cache-miss DRAM access
    cache_hit_cycles: int = 14             # touched-recently fast path
    mee_read_factor: float = 5.7           # EPC-resident read multiplier (Fig. 2)
    mee_write_factor: float = 6.3          # writes pay slightly more (MAC update)
    # Sequential cachelines after the first in one access are largely
    # hidden by the prefetcher; they cost this fraction of a full miss.
    stream_factor: float = 0.35
    # Shared last-level cache (i7-7700: 8 MB).  Lines resident in the LLC
    # cost cache_hit_cycles and bypass both DRAM and the EPC machinery.
    llc_bytes: int = 8 * MB

    # -- EPC demand paging -------------------------------------------------
    # Calibrated so a fully thrashing read lands at ~578x NoSGX (Fig. 2).
    page_fault_read_cycles: int = 206_000   # ~57.2 us: exit + EWB + ELDU + walk
    page_fault_write_cycles: int = 244_000  # ~67.8 us: adds dirty-victim writeback
    # Fraction of the fault serviced under the driver's global lock
    # (AEX + IPI + reclaim); the rest (page crypto) runs per-core.  This
    # is what caps the baseline's scaling at ~1.3x on 4 cores (Fig. 13).
    fault_serial_fraction: float = 0.7
    epc_total_bytes: int = 128 * MB
    epc_effective_bytes: int = 93 * MB      # after SGX security metadata

    # -- enclave transitions ----------------------------------------------
    ecall_cycles: int = 8_000              # round-trip EENTER/EEXIT (§2.2)
    ocall_cycles: int = 8_000              # round-trip OCALL
    hotcall_cycles: int = 620              # shared-memory switchless call

    # -- crypto (inside the enclave, AES-NI rates) -------------------------
    aes_init_cycles: int = 160             # per-call key/ctr setup
    aes_block_cycles: int = 36             # per 16-byte block
    cmac_init_cycles: int = 160
    cmac_block_cycles: int = 36
    keyed_hash_cycles: int = 220           # bucket-index / key-hint hash
    rand_cycles: int = 450                 # RDRAND-backed sgx_read_rand per 16B

    # -- software overheads -------------------------------------------------
    op_dispatch_cycles: int = 900          # request decode + store dispatch
    malloc_cycles: int = 260               # in-enclave allocator fast path
    syscall_cycles: int = 4_000            # kernel entry for mmap/sbrk/send
    fork_cycles: int = 2_000_000           # fork() for snapshotting

    # -- storage & network ---------------------------------------------------
    storage_write_bw_bytes_per_us: float = 300.0   # ~300 MB/s SATA SSD
    storage_seek_us: float = 30.0
    net_rtt_us: float = 28.0               # 10 GbE + kernel stack per request
    net_per_byte_us: float = 0.0009        # ~1.1 GB/s effective line rate
    monotonic_counter_us: float = 60_000.0  # SGX PSW counter increment (~60 ms)

    # -- derived helpers ---------------------------------------------------
    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at the platform clock."""
        return cycles / (self.freq_ghz * 1000.0)

    def us_to_cycles(self, us: float) -> float:
        """Convert microseconds to cycles at the platform clock."""
        return us * self.freq_ghz * 1000.0

    def mem_cycles(self, nbytes: int, write: bool, in_epc: bool) -> float:
        """Cost of touching ``nbytes`` of cache-miss memory.

        The first cacheline pays a full DRAM miss; the rest of a
        contiguous access streams behind the prefetcher.
        """
        lines = (nbytes + CACHELINE - 1) // CACHELINE
        base = self.dram_access_cycles * (1.0 + (lines - 1) * self.stream_factor)
        if in_epc:
            factor = self.mee_write_factor if write else self.mee_read_factor
            return base * factor
        return base

    def aes_cycles(self, nbytes: int) -> float:
        """Cost of one AES-CTR en/decryption call over ``nbytes``."""
        blocks = (nbytes + 15) // 16
        return self.aes_init_cycles + blocks * self.aes_block_cycles

    def cmac_cycles(self, nbytes: int) -> float:
        """Cost of one CMAC computation over ``nbytes``."""
        blocks = max(1, (nbytes + 15) // 16)
        return self.cmac_init_cycles + blocks * self.cmac_block_cycles

    def scaled(self, scale: float, llc_exponent: float = 0.5) -> "CostModel":
        """Return a model whose cache capacities are scaled by ``scale``.

        Benchmarks shrink working sets by ``scale`` (default 1/100); the
        EPC must shrink identically so paging miss ratios — and therefore
        every crossover in the paper — stay where the paper puts them.

        The LLC scales with ``scale ** llc_exponent``.  Zipfian cache
        coverage grows with the *logarithm* of capacity, so scaling the
        LLC linearly would understate the hot-key locality the paper's
        skewed workloads enjoy; a 0.5 exponent keeps the zipf hit ratio
        where an 8 MB L3 puts it at paper scale.  Microbenchmarks that
        must keep working sets >> all caches (Fig. 2) pass 1.0.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            epc_total_bytes=max(PAGE_SIZE, int(self.epc_total_bytes * scale)),
            epc_effective_bytes=max(PAGE_SIZE, int(self.epc_effective_bytes * scale)),
            llc_bytes=max(PAGE_SIZE, int(self.llc_bytes * (scale ** llc_exponent))),
        )


DEFAULT_COST_MODEL = CostModel()


@dataclass
class CycleCounters:
    """Aggregate event counters a simulation run accumulates.

    The ``*_cycles`` fields attribute charged cycles to categories
    (memory hierarchy, demand paging, crypto, boundary crossings) so
    experiments can print per-operation cost breakdowns.
    """

    mem_reads: int = 0
    mem_writes: int = 0
    epc_faults: int = 0
    epc_evictions: int = 0
    ecalls: int = 0
    ocalls: int = 0
    hotcalls: int = 0
    aes_calls: int = 0
    aes_bytes: int = 0
    cmac_calls: int = 0
    cmac_bytes: int = 0
    decryptions: int = 0
    mem_cycles: float = 0.0
    fault_cycles: float = 0.0
    crypto_cycles: float = 0.0
    crossing_cycles: float = 0.0

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "mem_reads": self.mem_reads,
            "mem_writes": self.mem_writes,
            "epc_faults": self.epc_faults,
            "epc_evictions": self.epc_evictions,
            "ecalls": self.ecalls,
            "ocalls": self.ocalls,
            "hotcalls": self.hotcalls,
            "aes_calls": self.aes_calls,
            "aes_bytes": self.aes_bytes,
            "cmac_calls": self.cmac_calls,
            "cmac_bytes": self.cmac_bytes,
            "decryptions": self.decryptions,
            "mem_cycles": self.mem_cycles,
            "fault_cycles": self.fault_cycles,
            "crypto_cycles": self.crypto_cycles,
            "crossing_cycles": self.crossing_cycles,
        }
