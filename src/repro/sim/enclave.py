"""The simulated machine and its enclave runtime.

A :class:`Machine` bundles the cost model, memory, EPC, thread clocks and
event counters of one host.  An :class:`Enclave` created on a machine has
an identity (measurement), holds secrets, and hands out in-enclave
execution contexts.  Execution contexts (:class:`ExecContext`) are how
code "runs somewhere": every charged operation names the context doing
the work, which fixes both the acting thread's clock and whether enclave
memory is reachable.

Boundary crossings follow the paper's §2.2: an ECALL/OCALL round trip
costs ~8,000 cycles; HotCalls-style switchless calls cost ~620.
"""

from __future__ import annotations

import random
from repro.errors import EnclaveError
from repro.sim.clock import MachineClock, ThreadClock
from repro.sim.cycles import DEFAULT_COST_MODEL, CostModel, CycleCounters
from repro.sim.epc import EPCDevice
from repro.sim.memory import REGION_ENCLAVE, REGION_UNTRUSTED, SimMemory


class Machine:
    """One simulated SGX-capable host.

    Parameters
    ----------
    cost:
        The cycle cost model (default: paper-calibrated i7-7700).
    num_threads:
        How many simulated worker threads the host runs.
    seed:
        Seed for the machine's deterministic RNG (IVs, attestation nonces).
    """

    def __init__(
        self,
        cost: CostModel = DEFAULT_COST_MODEL,
        num_threads: int = 1,
        seed: int = 2019,
    ):
        self.cost = cost
        self.clock = MachineClock(num_threads)
        self.counters = CycleCounters()
        self.epc = EPCDevice(cost, self.clock.paging, self.counters)
        self.memory = SimMemory(cost, self.epc, self.counters)
        self.rng = random.Random(seed)
        # Serializers owned by components (network locks, maintainer
        # locks); registered here so reset_measurement clears them too.
        self.serializers = []

    def context(self, thread_id: int = 0, in_enclave: bool = False) -> "ExecContext":
        """Create an execution context bound to one thread."""
        return ExecContext(self, self.clock.threads[thread_id], in_enclave)

    def elapsed_us(self) -> float:
        """Simulated wall time so far, in microseconds."""
        return self.cost.cycles_to_us(self.clock.elapsed_cycles())

    def register_serializer(self, serializer) -> None:
        """Track a component-owned serializer for measurement resets."""
        self.serializers.append(serializer)

    def reset_measurement(self) -> None:
        """Zero clocks and counters (EPC residency is kept — warm state)."""
        self.clock.reset()
        for serializer in self.serializers:
            serializer.reset()
        self.counters = CycleCounters()
        self.epc.counters = self.counters
        self.memory.counters = self.counters


class ExecContext:
    """A strand of execution: (machine, thread clock, privilege level)."""

    __slots__ = ("machine", "clock", "in_enclave")

    def __init__(self, machine: Machine, clock: ThreadClock, in_enclave: bool):
        self.machine = machine
        self.clock = clock
        self.in_enclave = in_enclave

    # -- generic charging ----------------------------------------------
    def charge(self, cycles: float) -> None:
        """Charge raw cycles to this context's thread."""
        self.clock.charge(cycles)

    def charge_us(self, us: float) -> None:
        """Charge a microsecond-denominated cost (I/O, network)."""
        self.clock.charge(self.machine.cost.us_to_cycles(us))

    # -- crypto cost helpers (the *work* happens in repro.crypto) ---------
    def charge_aes(self, nbytes: int) -> None:
        """Charge one AES-CTR call over ``nbytes``."""
        cycles = self.machine.cost.aes_cycles(nbytes)
        self.clock.charge(cycles)
        self.machine.counters.aes_calls += 1
        self.machine.counters.aes_bytes += nbytes
        self.machine.counters.crypto_cycles += cycles

    def charge_cmac(self, nbytes: int) -> None:
        """Charge one CMAC call over ``nbytes``."""
        cycles = self.machine.cost.cmac_cycles(nbytes)
        self.clock.charge(cycles)
        self.machine.counters.cmac_calls += 1
        self.machine.counters.cmac_bytes += nbytes
        self.machine.counters.crypto_cycles += cycles

    def charge_keyed_hash(self) -> None:
        """Charge one keyed bucket-index/key-hint hash."""
        self.clock.charge(self.machine.cost.keyed_hash_cycles)

    def charge_rand(self, nbytes: int = 16) -> None:
        """Charge an ``sgx_read_rand`` call."""
        self.clock.charge(
            self.machine.cost.rand_cycles * max(1, (nbytes + 15) // 16)
        )

    # -- boundary crossings ----------------------------------------------
    def ocall(self, syscall: bool = False) -> None:
        """Charge an OCALL round trip (optionally plus a kernel entry)."""
        if not self.in_enclave:
            raise EnclaveError("OCALL issued from outside the enclave")
        cost = self.machine.cost.ocall_cycles
        if syscall:
            cost += self.machine.cost.syscall_cycles
        self.clock.charge(cost)
        self.machine.counters.ocalls += 1
        self.machine.counters.crossing_cycles += cost

    def hotcall(self) -> None:
        """Charge a HotCalls switchless request handoff."""
        self.clock.charge(self.machine.cost.hotcall_cycles)
        self.machine.counters.hotcalls += 1
        self.machine.counters.crossing_cycles += self.machine.cost.hotcall_cycles

    def syscall(self) -> None:
        """Charge a plain (non-enclave) kernel entry."""
        if self.in_enclave:
            raise EnclaveError(
                "enclaves cannot issue syscalls directly; use ocall(syscall=True)"
            )
        self.clock.charge(self.machine.cost.syscall_cycles)


class Enclave:
    """An enclave instance: identity, secrets, and ECALL entry points.

    The measurement stands in for MRENCLAVE; remote attestation
    (:mod:`repro.sim.attestation`) proves it to clients.
    """

    def __init__(self, machine: Machine, measurement: bytes, name: str = "shieldstore"):
        if len(measurement) != 32:
            raise EnclaveError("measurement must be 32 bytes (SHA-256 sized)")
        self.machine = machine
        self.measurement = bytes(measurement)
        self.name = name

    def enter(self, thread_id: int = 0, hot: bool = False) -> ExecContext:
        """ECALL: transition a thread into the enclave and charge for it.

        ``hot=True`` models a HotCalls-style switchless entry.
        """
        ctx = self.machine.context(thread_id, in_enclave=True)
        if hot:
            ctx.hotcall()
        else:
            ctx.clock.charge(self.machine.cost.ecall_cycles)
            self.machine.counters.ecalls += 1
            self.machine.counters.crossing_cycles += self.machine.cost.ecall_cycles
        return ctx

    def context(self, thread_id: int = 0) -> ExecContext:
        """In-enclave context without charging a transition.

        Standalone experiments (paper §6.2) run the request loop inside
        the enclave, so per-operation crossings do not occur.
        """
        return self.machine.context(thread_id, in_enclave=True)

    def alloc(self, size: int, materialize: bool = True) -> int:
        """Allocate enclave (EPC-backed) memory."""
        return self.machine.memory.alloc(size, REGION_ENCLAVE, materialize)

    def alloc_untrusted(self, size: int, materialize: bool = True) -> int:
        """Allocate untrusted memory (what the extra heap allocator hands out)."""
        return self.machine.memory.alloc(size, REGION_UNTRUSTED, materialize)
