"""Byte-addressable simulated memory with enclave/untrusted regions.

Two address ranges exist, mirroring Figure 4 of the paper:

* the **enclave region** — accessible only from code running with an
  in-enclave execution context; every touch goes through the EPC model
  and pays MEE overheads or demand-paging faults;
* the **untrusted region** — accessible from anywhere (including the
  :class:`~repro.sim.attacker.Attacker`), at plain DRAM cost.

Allocations are bump-allocated and tracked so that arbitrary addresses
(pointer chases, attacker pokes) resolve to the owning allocation via
binary search.  Allocations may be *materialized* (a real ``bytearray``
holds the contents — used for everything security-relevant) or
*unmaterialized* (address space + cost accounting only — used by
baselines whose contents don't matter, to keep big sweeps cheap).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional

from repro.errors import EnclaveError, EnclaveMemoryError
from repro.sim.cycles import CACHELINE, PAGE_SIZE, CostModel, CycleCounters
from repro.sim.epc import EPCDevice
from repro.sim.llc import LLCache

ENCLAVE_BASE = 0x2000_0000_0000
ENCLAVE_SPAN = 0x1000_0000_0000  # contiguous enclave virtual range (§7 check)
UNTRUSTED_BASE = 0x7000_0000_0000
_ALIGN = 16

REGION_ENCLAVE = "enclave"
REGION_UNTRUSTED = "untrusted"


class Allocation:
    """One live allocation: base address, size, region, optional bytes."""

    __slots__ = ("base", "size", "region", "data")

    def __init__(self, base: int, size: int, region: str, data: Optional[bytearray]):
        self.base = base
        self.size = size
        self.region = region
        self.data = data

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:
        kind = "materialized" if self.data is not None else "virtual"
        return f"Allocation(base=0x{self.base:x}, size={self.size}, {self.region}, {kind})"


class SimMemory:
    """The machine's memory: allocator, access charging, page accounting."""

    def __init__(
        self,
        cost: CostModel,
        epc: EPCDevice,
        counters: CycleCounters,
        llc: Optional[LLCache] = None,
    ):
        self.cost = cost
        self.epc = epc
        self.counters = counters
        self.llc = llc if llc is not None else LLCache(cost)
        self._allocs: Dict[int, Allocation] = {}
        self._bases: List[int] = []
        self._next = {REGION_ENCLAVE: ENCLAVE_BASE, REGION_UNTRUSTED: UNTRUSTED_BASE}
        self.bytes_allocated = {REGION_ENCLAVE: 0, REGION_UNTRUSTED: 0}
        # The parallel partition router fans batches out to OS threads;
        # partitions are hash-disjoint, but they share this allocator's
        # bump pointers and sorted base list.
        self._alloc_lock = threading.Lock()

    # -- region predicates -------------------------------------------------
    @staticmethod
    def in_enclave_range(addr: int) -> bool:
        """§7 pointer-safety predicate: does ``addr`` fall in the enclave?"""
        return ENCLAVE_BASE <= addr < ENCLAVE_BASE + ENCLAVE_SPAN

    def region_of(self, addr: int) -> str:
        return REGION_ENCLAVE if self.in_enclave_range(addr) else REGION_UNTRUSTED

    # -- allocation ---------------------------------------------------------
    def alloc(self, size: int, region: str = REGION_UNTRUSTED, materialize: bool = True) -> int:
        """Reserve ``size`` bytes in ``region``; returns the base address."""
        if size <= 0:
            raise EnclaveMemoryError(f"allocation size must be positive, got {size}")
        if region not in self._next:
            raise EnclaveMemoryError(f"unknown region {region!r}")
        with self._alloc_lock:
            base = self._next[region]
            aligned = (size + _ALIGN - 1) & ~(_ALIGN - 1)
            self._next[region] = base + aligned
            data = bytearray(size) if materialize else None
            alloc = Allocation(base, size, region, data)
            self._allocs[base] = alloc
            bisect.insort(self._bases, base)
            self.bytes_allocated[region] += size
        return base

    def free(self, base: int) -> None:
        """Release the allocation starting at ``base``."""
        with self._alloc_lock:
            alloc = self._allocs.pop(base, None)
            if alloc is None:
                raise EnclaveMemoryError(f"free of unknown base 0x{base:x}")
            idx = bisect.bisect_left(self._bases, base)
            del self._bases[idx]
            self.bytes_allocated[alloc.region] -= alloc.size

    def find(self, addr: int) -> Allocation:
        """Resolve any address to the allocation containing it."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            alloc = self._allocs[self._bases[idx]]
            if alloc.base <= addr < alloc.end:
                return alloc
        raise EnclaveMemoryError(f"address 0x{addr:x} is not inside any allocation")

    # -- charged accesses ---------------------------------------------------
    def _charge(self, ctx, addr: int, size: int, write: bool) -> None:
        region = self.region_of(addr)
        in_epc = region == REGION_ENCLAVE
        if in_epc and (ctx is None or not ctx.in_enclave):
            raise EnclaveError(
                f"access to enclave address 0x{addr:x} from outside the enclave"
            )
        if ctx is not None:
            # LLC filter: lines already on-chip cost a cache hit and never
            # reach DRAM, the MEE, or the EPC pager.
            llc = self.llc
            first_line = addr // CACHELINE
            last_line = (addr + max(size, 1) - 1) // CACHELINE
            missed_lines = []
            hit_count = 0
            for line in range(first_line, last_line + 1):
                if llc.access(line):
                    hit_count += 1
                else:
                    missed_lines.append(line)
            cost = self.cost
            cycles = hit_count * cost.cache_hit_cycles
            if missed_lines:
                base = cost.dram_access_cycles * (
                    1.0 + (len(missed_lines) - 1) * cost.stream_factor
                )
                if in_epc:
                    factor = (
                        cost.mee_write_factor if write else cost.mee_read_factor
                    )
                    base *= factor
                    # Only lines that actually go to memory can fault.
                    pages = {
                        (line * CACHELINE) // PAGE_SIZE for line in missed_lines
                    }
                    for page in sorted(pages):
                        self.epc.touch(ctx.clock, page, write)
                cycles += base
            ctx.clock.charge(cycles)
            self.counters.mem_cycles += cycles
        if write:
            self.counters.mem_writes += 1
        else:
            self.counters.mem_reads += 1

    def read(self, ctx, addr: int, size: int) -> bytes:
        """Charged read of ``size`` bytes at ``addr``."""
        alloc = self.find(addr)
        if addr + size > alloc.end:
            raise EnclaveMemoryError(
                f"read of {size} bytes at 0x{addr:x} overruns allocation {alloc!r}"
            )
        self._charge(ctx, addr, size, write=False)
        if alloc.data is None:
            return bytes(size)
        off = addr - alloc.base
        return bytes(alloc.data[off : off + size])

    def write(self, ctx, addr: int, data: bytes) -> None:
        """Charged write of ``data`` at ``addr``."""
        alloc = self.find(addr)
        if addr + len(data) > alloc.end:
            raise EnclaveMemoryError(
                f"write of {len(data)} bytes at 0x{addr:x} overruns allocation {alloc!r}"
            )
        self._charge(ctx, addr, len(data), write=True)
        if alloc.data is not None:
            off = addr - alloc.base
            alloc.data[off : off + len(data)] = data

    def touch(self, ctx, addr: int, size: int, write: bool) -> None:
        """Charge for an access without moving any bytes (baselines)."""
        self._charge(ctx, addr, size, write)

    # -- uncharged accesses (attacker, bootstrap, assertions) ---------------
    def raw_read(self, addr: int, size: int) -> bytes:
        """Read without charging cycles; enclave region still refuses."""
        alloc = self.find(addr)
        if addr + size > alloc.end:
            raise EnclaveMemoryError(
                f"raw read of {size} bytes at 0x{addr:x} overruns {alloc!r}"
            )
        if alloc.data is None:
            return bytes(size)
        off = addr - alloc.base
        return bytes(alloc.data[off : off + size])

    def raw_write(self, addr: int, data: bytes) -> None:
        """Write without charging cycles (simulation bookkeeping only)."""
        alloc = self.find(addr)
        if addr + len(data) > alloc.end:
            raise EnclaveMemoryError(
                f"raw write of {len(data)} bytes at 0x{addr:x} overruns {alloc!r}"
            )
        if alloc.data is not None:
            off = addr - alloc.base
            alloc.data[off : off + len(data)] = data
