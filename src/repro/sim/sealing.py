"""SGX sealing: encrypt enclave secrets to the platform for storage.

Sealing binds data to (platform secret, enclave measurement) so only the
same enclave on the same machine can recover it — the mechanism the
paper's snapshots use for in-enclave metadata (§4.4).  The simulated
platform secret is derived from a machine seed; the sealed blob format is
``magic || measurement || iv || ciphertext || tag`` with authenticated
encryption from the cipher-suite layer.
"""

from __future__ import annotations

import os
import struct

from repro.crypto.keys import derive_key
from repro.crypto.suite import FastSuite
from repro.errors import SealingError
from repro.sim.enclave import Enclave, ExecContext

_MAGIC = b"SGXSEAL1"
_IV_SIZE = 16
_TAG_SIZE = 16
_MEAS_SIZE = 32


class SealingService:
    """Seal/unseal service bound to one machine's platform secret."""

    def __init__(self, platform_secret: bytes):
        if len(platform_secret) < 16:
            raise SealingError("platform secret must be at least 16 bytes")
        self._platform_secret = bytes(platform_secret)
        # Seal-IV allocator: entropy salt + monotone block counter.  The
        # sealing keys derive from the *platform* secret, which is the
        # same across every process incarnation of a machine seed — so
        # IVs must NOT come from the deterministic machine RNG, whose
        # replayed stream would hand a restored snapshot daemon the same
        # "random" IV under the same key.  The IV travels in the blob,
        # so unsealing needs no allocator state.
        self._iv_salt = int.from_bytes(os.urandom(8), "big")
        self._iv_seq = 0

    def _next_iv(self, nbytes: int) -> bytes:
        iv = struct.pack(">QQ", self._iv_salt, self._iv_seq)
        self._iv_seq += (nbytes + 15) // 16
        return iv

    def _suite_for(self, measurement: bytes) -> FastSuite:
        root = self._platform_secret + measurement
        return FastSuite(
            derive_key(root, "seal/enc"), derive_key(root, "seal/mac")
        )

    def seal(self, ctx: ExecContext, enclave: Enclave, plaintext: bytes) -> bytes:
        """Seal ``plaintext`` to ``enclave``'s identity on this platform."""
        suite = self._suite_for(enclave.measurement)
        iv = self._next_iv(len(plaintext))
        ctx.charge_rand(_IV_SIZE)  # the sgx_read_rand cost of a real seal IV
        ciphertext = suite.encrypt(iv, plaintext)
        ctx.charge_aes(len(plaintext))
        header = _MAGIC + enclave.measurement + iv
        tag = suite.mac(header + ciphertext)
        ctx.charge_cmac(len(header) + len(ciphertext))
        return header + ciphertext + tag

    def unseal(self, ctx: ExecContext, enclave: Enclave, blob: bytes) -> bytes:
        """Recover sealed data; raises :class:`SealingError` on mismatch."""
        min_len = len(_MAGIC) + _MEAS_SIZE + _IV_SIZE + _TAG_SIZE
        if len(blob) < min_len:
            raise SealingError("sealed blob too short")
        if blob[: len(_MAGIC)] != _MAGIC:
            raise SealingError("sealed blob has wrong magic")
        off = len(_MAGIC)
        measurement = blob[off : off + _MEAS_SIZE]
        off += _MEAS_SIZE
        iv = blob[off : off + _IV_SIZE]
        off += _IV_SIZE
        ciphertext = blob[off:-_TAG_SIZE]
        tag = blob[-_TAG_SIZE:]
        if measurement != enclave.measurement:
            raise SealingError(
                "sealed blob was produced by a different enclave measurement"
            )
        suite = self._suite_for(measurement)
        header = blob[: len(_MAGIC) + _MEAS_SIZE + _IV_SIZE]
        ctx.charge_cmac(len(header) + len(ciphertext))
        if not suite.verify(header + ciphertext, tag):
            raise SealingError("sealed blob failed authentication")
        ctx.charge_aes(len(ciphertext))
        return suite.decrypt(iv, ciphertext)
