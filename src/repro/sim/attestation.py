"""Remote attestation and secure-session establishment.

Mirrors the client/server steps of paper §3.2:

1. the client remote-attests the server enclave (quote over the
   measurement plus the enclave's ephemeral DH public key);
2. both sides derive session keys from a Diffie-Hellman exchange
   (RFC 3526 group 14, implemented with plain modular exponentiation);
3. subsequent requests flow over the session cipher suite.

The "attestation service" that vouches for quotes (Intel IAS in real
deployments) is a signing oracle keyed by a per-deployment secret that
both parties trust.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.keys import derive_key
from repro.crypto.suite import CipherSuite, make_suite
from repro.errors import AttestationError
from repro.sim.enclave import Enclave, ExecContext
from repro.sim.sdk import sgx_read_rand

# RFC 3526, 2048-bit MODP group 14.
_DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_DH_GEN = 2
ATTESTATION_QUOTE_US = 10_000.0  # EPID/DCAP quote generation is ~10 ms


@dataclass
class Quote:
    """An attestation quote: measurement + report data, service-signed."""

    measurement: bytes
    report_data: bytes
    signature: bytes


class AttestationService:
    """Signing oracle standing in for Intel's attestation service."""

    def __init__(self, service_secret: bytes):
        if len(service_secret) < 16:
            raise AttestationError("service secret must be at least 16 bytes")
        self._secret = bytes(service_secret)

    def quote(self, ctx: ExecContext, enclave: Enclave, report_data: bytes) -> Quote:
        """Produce a quote for ``enclave`` binding ``report_data``."""
        ctx.charge_us(ATTESTATION_QUOTE_US)
        sig = hmac.new(
            self._secret, enclave.measurement + report_data, hashlib.sha256
        ).digest()
        return Quote(enclave.measurement, bytes(report_data), sig)

    def verify(self, quote: Quote, expected_measurement: bytes) -> None:
        """Client-side check; raises :class:`AttestationError` on failure."""
        expected_sig = hmac.new(
            self._secret, quote.measurement + quote.report_data, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected_sig, quote.signature):
            raise AttestationError("quote signature is invalid")
        if quote.measurement != expected_measurement:
            raise AttestationError(
                "attested measurement does not match the expected enclave code"
            )


class DHKeyPair:
    """Ephemeral Diffie-Hellman key pair over MODP group 14."""

    __slots__ = ("private", "public")

    def __init__(self, entropy: bytes):
        if len(entropy) < 32:
            raise AttestationError("need at least 32 bytes of DH entropy")
        self.private = int.from_bytes(entropy, "big") % (_DH_PRIME - 2) + 1
        self.public = pow(_DH_GEN, self.private, _DH_PRIME)

    def shared_secret(self, peer_public: int) -> bytes:
        """Raw shared secret bytes from the peer's public value."""
        if not 1 < peer_public < _DH_PRIME - 1:
            raise AttestationError("peer DH public value out of range")
        value = pow(peer_public, self.private, _DH_PRIME)
        return value.to_bytes((_DH_PRIME.bit_length() + 7) // 8, "big")


def derive_session_suite(shared: bytes, suite_name: str = "fast-hashlib") -> CipherSuite:
    """Derive a session cipher suite from a DH shared secret."""
    root = hashlib.sha256(shared).digest()
    return make_suite(
        suite_name, derive_key(root, "session/enc"), derive_key(root, "session/mac")
    )


def attested_handshake(
    service: AttestationService,
    server_ctx: ExecContext,
    server_enclave: Enclave,
    client_entropy: bytes,
    suite_name: str = "fast-hashlib",
):
    """Run the full §3.2 handshake; returns (client_suite, server_suite).

    The two returned suites hold identical keys — returned separately so
    tests can assert both directions independently.
    """
    server_dh = DHKeyPair(sgx_read_rand(server_ctx, 32))
    report_data = hashlib.sha256(
        server_dh.public.to_bytes(256, "big")
    ).digest()
    quote = service.quote(server_ctx, server_enclave, report_data)

    # Client side: verify the quote covers the server's DH public key.
    service.verify(quote, server_enclave.measurement)
    client_dh = DHKeyPair(client_entropy)
    expected = hashlib.sha256(server_dh.public.to_bytes(256, "big")).digest()
    if quote.report_data != expected:
        raise AttestationError("quote does not bind the server DH key")

    client_suite = derive_session_suite(client_dh.shared_secret(server_dh.public), suite_name)
    server_suite = derive_session_suite(server_dh.shared_secret(client_dh.public), suite_name)
    return client_suite, server_suite
