"""Key-domain registry pass (rule ``key-domain``).

Every ``derive_key(master, label, ...)`` call in the tree carves out a
*key domain*: the derived key is only as independent as its label is
unique within the lineage of its master secret.  Two call sites whose
labels can collide (equal strings, or templates whose placeholders can
be chosen to produce equal strings) silently share a key; a label that
is a ``/``-segment prefix of another invites extension confusion when
labels are built by concatenation.

This pass makes the discipline checkable:

* :data:`REGISTRY` declares every key domain the tree is *supposed* to
  have: label template, defining module, lineage (which master secret
  the domain hangs off), purpose, binding components, whether the
  ciphertext persists across process incarnations, and how (key, IV)
  uniqueness is achieved.
* The static pass collects every ``derive_key`` call site, resolves its
  label expression (constants and f-strings — each ``{...}`` hole
  becomes a placeholder segment), and matches it against the registry.
  Unresolvable labels, unregistered domains, sites exceeding a domain's
  declared ``max_sites``, and chained derivations whose parent domain
  does not match the registry are findings.
* The registry itself is checked: within one lineage, templates must be
  pairwise non-unifiable (no two label sets can collide for any
  placeholder values), prefix-free per ``/``-segment, and
  purpose-unique; a domain that persists ciphertext must either bind an
  incarnation component or use an IV regime that is unique across
  incarnations.

``key_domain_table()`` renders the registry as the markdown table
embedded in ``docs/INTERNALS.md``.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

RULE = "key-domain"
DOC_URL = "docs/INTERNALS.md#key-schedule--nonce-discipline"
REMEDIATION = (
    "register the derive_key label in repro.analysis.cryptomap.REGISTRY "
    "with a collision-free, prefix-free template for its lineage"
)

# Anchor for findings about the registry itself (no source line).
REGISTRY_PATH = "analysis/cryptomap.py"

# IV regimes that stay unique across process incarnations, satisfying
# the persistence check without an incarnation binding component.
PERSISTENT_IV_REGIMES = frozenset(
    {"entropy-counter", "frame-epoch-seq", "per-key-version"}
)

# Binding components that tie a domain to one incarnation/epoch.
INCARNATION_COMPONENTS = frozenset(
    {"counter", "incarnation", "epoch", "nonce", "version"}
)


@dataclass(frozen=True)
class DomainSpec:
    """One declared key domain."""

    label: str                      # template, e.g. "shieldstore/wal/{partition}/{counter}"
    module: str                     # glob of the deriving module
    lineage: str                    # which master secret the domain hangs off
    purpose: str
    binding: Tuple[str, ...] = ()   # placeholder components bound into the label
    parent: Optional[str] = None    # label of the parent domain when chained
    persists: bool = False          # ciphertext outlives the process
    iv_regime: str = "n/a"          # how (key, IV) pairs stay unique;
                                    # "none" = key never feeds CTR (MAC)
    max_sites: int = 1              # distinct call sites allowed


REGISTRY: Tuple[DomainSpec, ...] = (
    # -- the enclave master secret (global lineage) ----------------------
    DomainSpec(
        "shieldstore/enc", "crypto/keys.py", "master",
        "entry encryption key (every store entry, §4.2)",
        persists=True, iv_regime="entropy-counter",
    ),
    DomainSpec(
        "shieldstore/mac", "crypto/keys.py", "master",
        "entry CMAC key (per-entry MACs and bucket-set hashes)",
    ),
    DomainSpec(
        "shieldstore/index", "crypto/keys.py", "master",
        "keyed bucket-index hash key (§4.3)",
    ),
    DomainSpec(
        "shieldstore/hint", "crypto/keys.py", "master",
        "key-hint hash key (1-byte disambiguation, §4.3)",
    ),
    DomainSpec(
        "shieldstore/platform-seal", "core/persistence.py", "master",
        "platform sealing secret for snapshot metadata (§4.4)",
        persists=True, iv_regime="entropy-counter",
    ),
    DomainSpec(
        "shieldstore/wal/{partition}/{counter}", "core/wal.py", "master",
        "per-segment WAL key, one per (partition, snapshot counter)",
        binding=("partition", "counter"),
        persists=True, iv_regime="frame-epoch-seq",
    ),
    DomainSpec(
        "shieldstore/procpool/{index}/{nonce}", "core/procpool.py", "master",
        "per-incarnation worker-pipe session secret",
        binding=("index", "nonce"),
    ),
    DomainSpec(
        "shieldstore/repl-digest", "ext/replication.py", "master",
        "anti-entropy per-set logical digest key (replication groups)",
        iv_regime="none",
    ),
    # -- chained: WAL segment key ---------------------------------------
    DomainSpec(
        "wal/enc", "core/wal.py", "wal-segment",
        "WAL frame encryption key",
        parent="shieldstore/wal/{partition}/{counter}",
        persists=True, iv_regime="frame-epoch-seq",
    ),
    DomainSpec(
        "wal/mac", "core/wal.py", "wal-segment",
        "WAL frame MAC key",
        parent="shieldstore/wal/{partition}/{counter}",
        persists=True, iv_regime="none",
    ),
    # -- chained: worker pipe session -----------------------------------
    DomainSpec(
        "pipe/enc", "core/procpool.py", "pipe-session",
        "worker-pipe record encryption key",
        parent="shieldstore/procpool/{index}/{nonce}",
        iv_regime="channel-seq",
    ),
    DomainSpec(
        "pipe/mac", "core/procpool.py", "pipe-session",
        "worker-pipe record MAC key",
        parent="shieldstore/procpool/{index}/{nonce}",
    ),
    # -- per-session DH roots -------------------------------------------
    DomainSpec(
        "sess/enc", "net/sessions.py", "client-session",
        "client-session record encryption key (per-DH root)",
        iv_regime="channel-seq",
    ),
    DomainSpec(
        "sess/mac", "net/sessions.py", "client-session",
        "client-session record MAC key (per-DH root)",
    ),
    DomainSpec(
        "session/enc", "sim/attestation.py", "attested-session",
        "attested-channel encryption key (per-DH root)",
        iv_regime="channel-seq",
    ),
    DomainSpec(
        "session/mac", "sim/attestation.py", "attested-session",
        "attested-channel MAC key (per-DH root)",
    ),
    # -- sealing (platform secret + measurement root) --------------------
    DomainSpec(
        "seal/enc", "sim/sealing.py", "sealing",
        "sealed-blob encryption key",
        persists=True, iv_regime="entropy-counter",
    ),
    DomainSpec(
        "seal/mac", "sim/sealing.py", "sealing",
        "sealed-blob MAC key",
        persists=True, iv_regime="none",
    ),
    # -- client-side encryption deployment ------------------------------
    DomainSpec(
        "cs/{namespace}/enc", "ext/clientside.py", "clientside",
        "client-side namespace encryption key",
        binding=("namespace",),
        persists=True, iv_regime="per-key-version",
    ),
    DomainSpec(
        "cs/{namespace}/mac", "ext/clientside.py", "clientside",
        "client-side namespace MAC key",
        binding=("namespace",),
        persists=True, iv_regime="none",
    ),
    # -- experiment fixtures (fixed demo roots, two endpoints each) ------
    DomainSpec(
        "fig18/chan/enc", "experiments/fig18.py", "fig18-demo",
        "fig18 demo channel encryption key",
        iv_regime="channel-seq", max_sites=2,
    ),
    DomainSpec(
        "fig18/chan/mac", "experiments/fig18.py", "fig18-demo",
        "fig18 demo channel MAC key", max_sites=2,
    ),
    DomainSpec(
        "fig19/enc", "experiments/fig19.py", "fig19-demo",
        "fig19 demo channel encryption key",
        iv_regime="channel-seq", max_sites=2,
    ),
    DomainSpec(
        "fig19/mac", "experiments/fig19.py", "fig19-demo",
        "fig19 demo channel MAC key", max_sites=2,
    ),
)


# -- label templates ---------------------------------------------------------
# A template is a tuple of segments; each segment is either a literal
# string or the wildcard None (a placeholder hole).
Segment = Optional[str]
Template = Tuple[Segment, ...]


def parse_template(label: str) -> Template:
    """Parse a human-written spec template ("a/{x}/b" -> ("a", None, "b"))."""
    segments: List[Segment] = []
    for part in label.split("/"):
        if "{" in part:
            segments.append(None)
        else:
            segments.append(part)
    return tuple(segments)


def template_str(template: Template) -> str:
    return "/".join("{}" if seg is None else seg for seg in template)


def resolve_label(node: ast.expr) -> Optional[Template]:
    """Resolve a label expression to a template, or None if opaque.

    Constants resolve exactly; f-strings resolve with each formatted
    hole as a placeholder.  A segment mixing literal text and a hole is
    a placeholder segment (its literal part cannot prevent collisions
    for all values).  Any other expression is unresolvable.
    """
    marker = "\x00"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    elif isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append(marker)
            else:
                return None
        text = "".join(parts)
    else:
        return None
    return tuple(
        None if marker in part else part for part in text.split("/")
    )


def _compatible(a: Template, b: Template, length: int) -> bool:
    """Can the first ``length`` segments of both templates coincide?"""
    for seg_a, seg_b in zip(a[:length], b[:length]):
        if seg_a is not None and seg_b is not None and seg_a != seg_b:
            return False
    return True


def templates_unify(a: Template, b: Template) -> bool:
    """True when some placeholder assignment makes the labels equal."""
    return len(a) == len(b) and _compatible(a, b, len(a))


def template_is_prefix(a: Template, b: Template) -> bool:
    """True when ``a`` can be a proper ``/``-segment prefix of ``b``."""
    return len(a) < len(b) and _compatible(a, b, len(a))


def _spec_template(spec: DomainSpec) -> Template:
    return parse_template(spec.label)


# -- site collection ---------------------------------------------------------
@dataclass
class DeriveSite:
    """One ``derive_key`` call discovered in the tree."""

    path: str
    line: int
    template: Optional[Template]       # None: unresolvable label
    label_text: str                    # for messages
    master_text: str                   # unparsed master argument
    parent_template: Optional[Template] = None  # when chained


class _SiteCollector(ast.NodeVisitor):
    """Collect derive_key sites of one module, tracking chains.

    A chained derivation is ``derive_key(x, ...)`` where ``x`` is a
    local name previously assigned from another ``derive_key`` call in
    the same function body — the only intraprocedural chaining idiom the
    tree uses (WAL segment keys, worker pipe secrets).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.sites: List[DeriveSite] = []
        # name -> template of the derive_key call assigned to it,
        # within the innermost function scope.
        self._derived_names: Dict[str, Optional[Template]] = {}

    def _enter_scope(self, node: ast.AST) -> None:
        saved = self._derived_names
        self._derived_names = {}
        self.generic_visit(node)
        self._derived_names = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        call = node.value
        if (
            isinstance(call, ast.Call)
            and _is_derive_call(call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and len(call.args) >= 2
        ):
            self._derived_names[node.targets[0].id] = resolve_label(
                call.args[1]
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_derive_call(node) and len(node.args) >= 2:
            master, label = node.args[0], node.args[1]
            try:
                master_text = ast.unparse(master)
            except Exception:  # pragma: no cover - unparse is total
                master_text = "<master>"
            try:
                label_text = ast.unparse(label)
            except Exception:  # pragma: no cover - unparse is total
                label_text = "<label>"
            parent: Optional[Template] = None
            if isinstance(master, ast.Name):
                parent = self._derived_names.get(master.id)
            self.sites.append(
                DeriveSite(
                    path=self.path,
                    line=node.lineno,
                    template=resolve_label(label),
                    label_text=label_text,
                    master_text=master_text,
                    parent_template=parent,
                )
            )
        self.generic_visit(node)


def _is_derive_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "derive_key"
    if isinstance(func, ast.Attribute):
        return func.attr == "derive_key"
    return False


def collect(path: str, tree: ast.AST, sites: List[DeriveSite]) -> List[Finding]:
    """Collect one module's derive_key sites; report unresolvable labels."""
    collector = _SiteCollector(path)
    collector.visit(tree)
    findings: List[Finding] = []
    for site in collector.sites:
        if site.template is None:
            findings.append(
                Finding(
                    RULE,
                    site.path,
                    site.line,
                    f"derive_key label {site.label_text} is not statically "
                    "resolvable; use a string constant or f-string so the "
                    "key-domain registry can prove it collision-free",
                )
            )
        else:
            sites.append(site)
    return findings


# -- registry checks ---------------------------------------------------------
def registry_findings(
    registry: Sequence[DomainSpec] = REGISTRY,
) -> List[Finding]:
    """Validate the registry itself: collision-free, prefix-free,
    purpose-unique per lineage; persistence needs incarnation binding."""
    findings: List[Finding] = []
    by_lineage: Dict[str, List[DomainSpec]] = {}
    for spec in registry:
        by_lineage.setdefault(spec.lineage, []).append(spec)
    for lineage, specs in sorted(by_lineage.items()):
        for i, spec_a in enumerate(specs):
            for spec_b in specs[i + 1 :]:
                t_a, t_b = _spec_template(spec_a), _spec_template(spec_b)
                if templates_unify(t_a, t_b):
                    findings.append(
                        Finding(
                            RULE,
                            REGISTRY_PATH,
                            0,
                            f"domains {spec_a.label!r} and {spec_b.label!r} "
                            f"of lineage {lineage!r} can collide: some "
                            "placeholder assignment makes the labels equal",
                        )
                    )
                for first, second in ((spec_a, spec_b), (spec_b, spec_a)):
                    if template_is_prefix(
                        _spec_template(first), _spec_template(second)
                    ):
                        findings.append(
                            Finding(
                                RULE,
                                REGISTRY_PATH,
                                0,
                                f"domain {first.label!r} is a segment-prefix "
                                f"of {second.label!r} in lineage {lineage!r}",
                            )
                        )
                if spec_a.purpose == spec_b.purpose:
                    findings.append(
                        Finding(
                            RULE,
                            REGISTRY_PATH,
                            0,
                            f"domains {spec_a.label!r} and {spec_b.label!r} "
                            f"of lineage {lineage!r} share a purpose; "
                            "distinct domains need distinct purposes",
                        )
                    )
    for spec in registry:
        if spec.iv_regime == "none":
            continue  # MAC-only key: no keystream, nothing to reuse
        if spec.persists and spec.iv_regime not in PERSISTENT_IV_REGIMES:
            if not any(
                component in INCARNATION_COMPONENTS
                for component in spec.binding
            ):
                findings.append(
                    Finding(
                        RULE,
                        REGISTRY_PATH,
                        0,
                        f"domain {spec.label!r} persists ciphertext across "
                        "incarnations but binds no incarnation/counter "
                        "component and has no incarnation-unique IV regime",
                    )
                )
    return findings


def finalize(
    sites: Sequence[DeriveSite],
    registry: Sequence[DomainSpec] = REGISTRY,
) -> List[Finding]:
    """Cross-file phase: match collected sites against the registry."""
    findings = registry_findings(registry)
    sites_per_spec: Dict[int, List[DeriveSite]] = {
        i: [] for i in range(len(registry))
    }
    for site in sites:
        assert site.template is not None  # unresolvable filtered in collect()
        matched = None
        for i, spec in enumerate(registry):
            if site.template == _spec_template(spec) and fnmatch.fnmatch(
                site.path, spec.module
            ):
                matched = i
                break
        if matched is None:
            findings.append(
                Finding(
                    RULE,
                    site.path,
                    site.line,
                    f"unregistered key domain {site.label_text}: no "
                    "registry entry matches this label template in this "
                    "module; add a DomainSpec to cryptomap.REGISTRY",
                )
            )
            continue
        spec = registry[matched]
        sites_per_spec[matched].append(site)
        expected_parent = (
            parse_template(spec.parent) if spec.parent is not None else None
        )
        if expected_parent != site.parent_template:
            declared = spec.parent if spec.parent is not None else "<root>"
            actual = (
                template_str(site.parent_template)
                if site.parent_template is not None
                else "<root>"
            )
            findings.append(
                Finding(
                    RULE,
                    site.path,
                    site.line,
                    f"domain {spec.label!r} declares parent {declared!r} "
                    f"but this site derives from {actual!r}",
                )
            )
    for i, spec in enumerate(registry):
        matched_sites = sites_per_spec[i]
        if len(matched_sites) > spec.max_sites:
            extra = matched_sites[spec.max_sites]
            findings.append(
                Finding(
                    RULE,
                    extra.path,
                    extra.line,
                    f"domain {spec.label!r} derived at "
                    f"{len(matched_sites)} sites but the registry allows "
                    f"{spec.max_sites}; distinct derivations need distinct "
                    "labels",
                )
            )
    return findings


# -- documentation table -----------------------------------------------------
def key_domain_table(registry: Sequence[DomainSpec] = REGISTRY) -> str:
    """The registry as a markdown table (embedded in INTERNALS.md)."""
    lines = [
        "| label | module | lineage | binding | persists | IV regime | purpose |",
        "|---|---|---|---|---|---|---|",
    ]
    for spec in registry:
        binding = ", ".join(spec.binding) if spec.binding else "—"
        lines.append(
            "| `%s` | `%s` | %s | %s | %s | %s | %s |"
            % (
                spec.label,
                spec.module,
                spec.lineage,
                binding,
                "yes" if spec.persists else "no",
                spec.iv_regime,
                spec.purpose,
            )
        )
    return "\n".join(lines)
