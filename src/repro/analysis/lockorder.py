"""Lock-order pass (rule ``lock-order``).

Extracts the lock-acquisition structure of the concurrent modules
(:data:`repro.analysis.trustmap.LOCK_MODULES`) and enforces three
things:

1. **pinned acquisition order** — locks belong to *families*
   (``store`` < ``worker`` < ``health`` < ``alloc``); acquiring a lock
   whose family sorts before one already held is a finding, and the
   global edge graph is additionally checked for cycles;
2. **ascending worker locks** — several ``worker`` locks may be held
   at once only when acquired through an ``ExitStack`` loop over a
   provably ascending iterable (``sorted(...)`` or ``self.workers``);
   any other same-family nesting cannot be statically ordered and is
   flagged;
3. **guarded shared state** — attributes listed in
   :data:`repro.analysis.trustmap.GUARDED_ATTRS` may only be mutated
   while a lock of their family is held, on any path reachable from a
   public method (construction/teardown methods are exempt).

The held-lock set is propagated interprocedurally through
``self.method(...)`` calls within a class, so helpers documented as
"caller holds the lock" are analyzed under their real callers.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis import trustmap
from repro.analysis.findings import Finding

RULE = "lock-order"
DOC_URL = "docs/INTERNALS.md#static-analysis-shieldlint"
REMEDIATION = (
    "Acquire worker locks in ascending index order only, and guard "
    "shared pool state with the pool lock before mutating it."
)

_MUTATING_CONTAINER_METHODS = frozenset(
    {"add", "discard", "clear", "append", "pop", "update", "remove",
     "insert", "setdefault", "extend"}
)

_MAX_CALL_DEPTH = 8


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover
        return ""


def family_of(expr_text: str) -> Optional[str]:
    """Classify an acquired lock expression into a family, or None."""
    for fragment, family in trustmap.LOCK_FAMILY_PATTERNS:
        if fragment in expr_text:
            return family
    return None


def _order_index(family: str) -> int:
    try:
        return trustmap.LOCK_ORDER.index(family)
    except ValueError:
        return len(trustmap.LOCK_ORDER)


class _ClassAnalysis:
    """Interprocedural walk of one class's methods."""

    def __init__(
        self,
        path: str,
        klass: ast.ClassDef,
        findings: List[Finding],
        edges: Set[Tuple[str, str]],
        edge_sites: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> None:
        self.path = path
        self.klass = klass
        self.findings = findings
        self.edges = edges
        self.edge_sites = edge_sites
        self.methods: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in klass.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.guarded = trustmap.GUARDED_ATTRS.get(klass.name, {})
        # Guarded attributes of *other* classes this class manipulates
        # (e.g. the pool mutating _WorkerHandle counters).
        self.foreign_guarded: Dict[str, str] = {}
        for name, attrs in trustmap.GUARDED_ATTRS.items():
            if name != klass.name:
                self.foreign_guarded.update(attrs)
        self._memo: Set[Tuple[str, FrozenSet[str]]] = set()
        self._reported: Set[Tuple[int, str]] = set()

    # -- public driver -------------------------------------------------------
    def run(self) -> None:
        for name, func in self.methods.items():
            if name.startswith("_"):
                continue
            if name in trustmap.CONSTRUCTION_METHODS:
                continue
            self._run_method(name, frozenset(), depth=0)

    # -- helpers -------------------------------------------------------------
    def _report(self, line: int, message: str) -> None:
        if (line, message) in self._reported:
            return
        self._reported.add((line, message))
        self.findings.append(Finding(RULE, self.path, line, message))

    def _guard_family(self, attr: str) -> Optional[str]:
        if attr in self.guarded:
            return self.guarded[attr]
        return self.foreign_guarded.get(attr)

    def _record_edge(self, holder: str, acquired: str, line: int) -> None:
        self.edges.add((holder, acquired))
        self.edge_sites.setdefault((holder, acquired), (self.path, line))
        if _order_index(holder) > _order_index(acquired):
            self._report(
                line,
                f"lock family `{acquired}` acquired while holding "
                f"`{holder}`; the pinned order is "
                + " < ".join(trustmap.LOCK_ORDER),
            )

    # -- method walk ---------------------------------------------------------
    def _run_method(
        self, name: str, held: FrozenSet[str], depth: int
    ) -> None:
        key = (name, held)
        if key in self._memo or depth > _MAX_CALL_DEPTH:
            return
        self._memo.add(key)
        func = self.methods[name]
        assigns = {
            t.id: stmt.value
            for stmt in ast.walk(func)
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        self._walk_body(list(func.body), set(held), assigns, depth, in_loop=False)

    def _walk_body(
        self,
        body: List[ast.stmt],
        held: Set[str],
        assigns: Dict[str, ast.AST],
        depth: int,
        in_loop: bool,
        ascending_loop: bool = False,
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held, assigns, depth, in_loop, ascending_loop)

    def _shallow_exprs(self, stmt: ast.stmt) -> List[ast.AST]:
        """Expression parts of ``stmt`` that execute at *this* nesting
        level — compound statements' bodies are walked separately, so
        only their headers (test/iter/context) are examined here."""
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.While, ast.If)):
            return [stmt.test]
        if isinstance(stmt, ast.Try):
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        return [stmt]

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        held: Set[str],
        assigns: Dict[str, ast.AST],
        depth: int,
        in_loop: bool,
        ascending_loop: bool,
    ) -> None:
        shallow = self._shallow_exprs(stmt)
        self._check_mutations(stmt, held)
        for node in shallow:
            self._check_calls(node, held, depth, in_loop, ascending_loop)
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                family = family_of(_unparse(item.context_expr))
                if family is None:
                    continue
                self._acquire(
                    family, inner, stmt.lineno, via_stack=False,
                    ascending_loop=False,
                )
                inner.add(family)
            self._walk_body(
                list(stmt.body), inner, assigns, depth, in_loop, ascending_loop
            )
        elif isinstance(stmt, ast.If):
            self._walk_body(list(stmt.body), set(held), assigns, depth, in_loop, ascending_loop)
            self._walk_body(list(stmt.orelse), set(held), assigns, depth, in_loop, ascending_loop)
        elif isinstance(stmt, (ast.For, ast.While)):
            ascending = ascending_loop
            if isinstance(stmt, ast.For):
                ascending = self._iterable_is_ascending(stmt.iter, assigns)
            # enter_context acquisitions persist past the loop body, so
            # walk with a shared held-set.
            self._walk_body(
                list(stmt.body), held, assigns, depth, in_loop=True,
                ascending_loop=ascending,
            )
            self._walk_body(
                list(stmt.orelse), held, assigns, depth, in_loop, ascending_loop
            )
        elif isinstance(stmt, ast.Try):
            for sub in (
                [list(stmt.body)]
                + [list(h.body) for h in stmt.handlers]
                + [list(stmt.orelse), list(stmt.finalbody)]
            ):
                self._walk_body(sub, set(held), assigns, depth, in_loop, ascending_loop)

    def _iterable_is_ascending(
        self, iter_node: ast.AST, assigns: Dict[str, ast.AST]
    ) -> bool:
        text = _unparse(iter_node)
        if text in trustmap.ASCENDING_ITERABLES:
            return True
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("sorted", "range", "enumerate")
        ):
            return True
        if isinstance(iter_node, ast.Name):
            value = assigns.get(iter_node.id)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("sorted", "range")
            ):
                return True
        return False

    def _acquire(
        self,
        family: str,
        held: Set[str],
        line: int,
        via_stack: bool,
        ascending_loop: bool,
    ) -> None:
        for holder in held:
            if holder == family:
                if family == "worker" and via_stack and ascending_loop:
                    continue  # proven ascending multi-acquisition
                self._report(
                    line,
                    f"second `{family}` lock acquired while one is already "
                    "held; multiple worker locks must come from an "
                    "ExitStack loop over sorted(...) or self.workers "
                    "(ascending partition index)",
                )
            else:
                self._record_edge(holder, family, line)

    def _check_calls(
        self,
        root: ast.AST,
        held: Set[str],
        depth: int,
        in_loop: bool,
        ascending_loop: bool,
    ) -> None:
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # stack.enter_context(<lock>) — persistent acquisition.
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "enter_context"
                and node.args
            ):
                family = family_of(_unparse(node.args[0]))
                if family is not None:
                    if family == "worker" and in_loop and not ascending_loop:
                        self._report(
                            node.lineno,
                            "worker locks acquired in a loop whose iterable "
                            "is not provably ascending; iterate "
                            "sorted(...) or self.workers",
                        )
                    self._acquire(
                        family, held, node.lineno, via_stack=True,
                        ascending_loop=ascending_loop,
                    )
                    held.add(family)
                continue
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if name in trustmap.IMPLIED_WORKER_ACQUIRE:
                if held:
                    for holder in held:
                        if holder != "worker":
                            self._record_edge(holder, "worker", node.lineno)
                continue
            # self.method(...) — propagate the held set into the callee.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and name in self.methods
            ):
                self._run_method_at(name, frozenset(held), depth + 1)

    def _run_method_at(
        self, name: str, held: FrozenSet[str], depth: int
    ) -> None:
        key = (name, held)
        if key in self._memo or depth > _MAX_CALL_DEPTH:
            return
        self._memo.add(key)
        func = self.methods[name]
        assigns = {
            t.id: stmt.value
            for stmt in ast.walk(func)
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        self._walk_body(list(func.body), set(held), assigns, depth, in_loop=False)

    # -- guarded shared-state mutations --------------------------------------
    def _check_mutations(self, stmt: ast.stmt, held: Set[str]) -> None:
        targets: List[Tuple[str, int]] = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            raw_targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in raw_targets:
                if isinstance(target, ast.Attribute):
                    targets.append((target.attr, stmt.lineno))
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Attribute):
                            targets.append((elt.attr, stmt.lineno))
        # container mutations: self._degraded.add(...), etc. — only at
        # this nesting level (bodies are walked separately).
        for root in self._shallow_exprs(stmt):
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_CONTAINER_METHODS
                    and isinstance(node.func.value, ast.Attribute)
                ):
                    targets.append((node.func.value.attr, node.lineno))
        for attr, line in targets:
            family = self._guard_family(attr)
            if family is None:
                continue
            if family not in held:
                self._report(
                    line,
                    f"shared state `{attr}` mutated without holding its "
                    f"`{family}` lock (concurrent parent threads may race)",
                )


def run_module(
    path: str,
    tree: ast.Module,
    edges: Set[Tuple[str, str]],
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]],
) -> List[Finding]:
    if not trustmap.is_lock_module(path):
        return []
    findings: List[Finding] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            _ClassAnalysis(path, stmt, findings, edges, edge_sites).run()
    return findings


def cycle_findings(
    edges: Set[Tuple[str, str]],
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]],
) -> List[Finding]:
    """Detect cycles in the global lock-acquisition graph."""
    graph: Dict[str, Set[str]] = {}
    for holder, acquired in edges:
        graph.setdefault(holder, set()).add(acquired)

    findings: List[Finding] = []
    visiting: List[str] = []
    done: Set[str] = set()

    def dfs(node: str) -> None:
        if node in done:
            return
        if node in visiting:
            cycle = visiting[visiting.index(node) :] + [node]
            edge = (cycle[0], cycle[1])
            path, line = edge_sites.get(edge, ("<lock-graph>", 0))
            findings.append(
                Finding(
                    RULE,
                    path,
                    line,
                    "lock-acquisition cycle: " + " -> ".join(cycle),
                )
            )
            return
        visiting.append(node)
        for succ in sorted(graph.get(node, ())):
            dfs(succ)
        visiting.pop()
        done.add(node)

    for node in sorted(graph):
        dfs(node)
    return findings
