"""Finding records and the suppression syntax.

A finding pins one invariant violation to ``path:line`` plus a rule id.
Suppressions are source comments (``rule-name`` is the rule id being
silenced, e.g. ``trust-boundary``)::

    # shieldlint: ignore[rule-name] -- justification text

placed either on the flagged line or on a line of its own immediately
above it.  Several rules may be listed (``ignore[rule-a,rule-b]``).
The justification after ``--`` is mandatory: a suppression without one
is itself reported under the ``suppression`` rule, which cannot be
suppressed — silencing the analyzer always leaves a written reason in
the tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_SUPPRESS_RE = re.compile(
    r"#\s*shieldlint:\s*ignore\[(?P<rules>[a-z0-9_,\s-]+)\]"
    r"(?:\s*(?:--|—)\s*(?P<why>.*\S))?"
)

RULE_SUPPRESSION = "suppression"


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: Optional[str] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.justification:
            data["justification"] = self.justification
        return data

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.location()}: [{self.rule}] {self.message}{mark}"


@dataclass
class Suppression:
    """One parsed ``shieldlint: ignore`` comment."""

    line: int
    rules: List[str]
    justification: Optional[str]
    used: bool = field(default=False)

    def covers(self, rule: str, line: int) -> bool:
        """A suppression covers its own line and the line below it
        (the comment-above-the-statement style)."""
        return rule in self.rules and line in (self.line, self.line + 1)


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression comment of one file."""
    found: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
        found.append(Suppression(lineno, rules, match.group("why")))
    return found


def apply_suppressions(
    findings: List[Finding], by_path: Dict[str, List[Suppression]]
) -> List[Finding]:
    """Mark covered findings suppressed; report unjustified suppressions.

    Returns the full finding list (suppressed ones included, flagged) so
    reports can show what was silenced and why.
    """
    for finding in findings:
        if finding.rule == RULE_SUPPRESSION:
            continue
        for supp in by_path.get(finding.path, ()):
            if supp.covers(finding.rule, finding.line):
                if supp.justification:
                    finding.suppressed = True
                    finding.justification = supp.justification
                    supp.used = True
                break
    bare = [
        Finding(
            RULE_SUPPRESSION,
            path,
            supp.line,
            "suppression without a justification: write "
            "'# shieldlint: ignore[rule] -- why this is safe'",
        )
        for path, supps in sorted(by_path.items())
        for supp in supps
        if not supp.justification
    ]
    return findings + bare
