"""Verify-before-use pass (rule ``verify-before-use``).

Every entry read from untrusted memory must be MAC-verified before its
plaintext is *used* (paper §4.3): returned from a public store
operation, or allowed to guide a mutation of the authenticated
structure.  This pass enforces that on the store modules listed in
:data:`repro.analysis.trustmap.VERIFY_MODULES`:

1. **summaries** — per class, the set of *producer* methods (those
   that transitively call a decrypt primitive and therefore hold
   untrusted-derived plaintext) and *verifier* methods (those that
   transitively call a MAC/set-hash verification primitive, or are
   named ``_verify*``);
2. **per-path check** — each public method that touches a producer is
   walked with a ``verified`` flag.  ``if``/``else`` branches merge
   with logical AND, so a verification that only happens on *some*
   paths does not count — the "unreachable on some path" case.  A
   return/yield of producer-derived data, or a call into a mutator of
   the authenticated structure, while ``verified`` is false is a
   finding.

Loops are treated as taken at least once (the store's batched
operations verify per touched set inside their loops).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, List, Optional, Set

from repro.analysis import trustmap
from repro.analysis.findings import Finding

RULE = "verify-before-use"
DOC_URL = "docs/INTERNALS.md#static-analysis-shieldlint"
REMEDIATION = (
    "Verify the entry MAC (verify_entry/check_mac) on every path before "
    "the decrypted data escapes a public API or mutates the "
    "authenticated structure."
)

# Modules whose classes implement the verified read path.
VERIFY_MODULES = ("core/store.py",)


def _called_names(func: ast.AST) -> Set[str]:
    """Every syntactic callee name (any receiver) — for matching
    primitive seeds like ``suite.decrypt`` / ``macbuckets.verify_set``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
            elif isinstance(node.func, ast.Name):
                names.add(node.func.id)
    return names


def _self_called_names(func: ast.AST) -> Set[str]:
    """Only ``self.method(...)`` callees — the intra-class call graph.

    Propagating summaries through arbitrary attribute names conflates
    unrelated methods of the same spelling (``chunk.append`` vs the
    store's ``append`` operation), so the transitive closure walks
    self-calls only.
    """
    names: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            names.add(node.func.attr)
    return names


def _fixpoint(
    prims: Dict[str, Set[str]],
    selfcalls: Dict[str, Set[str]],
    seeds: Set[str],
) -> Set[str]:
    """Methods reaching a seed primitive, transitively via self-calls."""
    member: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in prims:
            if name in member:
                continue
            if prims[name] & seeds or selfcalls[name] & member:
                member.add(name)
                changed = True
    return member


class _MethodWalk:
    """Path-sensitive-ish walk of one public method."""

    def __init__(
        self,
        path: str,
        findings: List[Finding],
        producers: Set[str],
        verifiers: Set[str],
    ) -> None:
        self.path = path
        self.findings = findings
        self.producers = producers
        self.verifiers = verifiers
        self.derived: Set[str] = set()
        self.verified = False

    # -- expression classification ------------------------------------------
    @staticmethod
    def _is_self_call(call: ast.Call) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        )

    def _is_producer_call(self, call: ast.Call) -> bool:
        name = None
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
        elif isinstance(call.func, ast.Name):
            name = call.func.id
        if name in trustmap.PRODUCER_METHODS:
            return True
        # class-summary matches need a self receiver (``chunk.append``
        # must not alias the store's ``append`` operation)
        return name in self.producers and self._is_self_call(call)

    def _is_verifier_call(self, call: ast.Call) -> bool:
        name = None
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
        elif isinstance(call.func, ast.Name):
            name = call.func.id
        if name is None:
            return False
        if name in trustmap.VERIFIER_METHODS or name.startswith("_verify"):
            return True
        return name in self.verifiers and self._is_self_call(call)

    def is_derived(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.derived
        if isinstance(node, ast.Call):
            if self._is_producer_call(node):
                return True
            return any(self.is_derived(a) for a in node.args) or any(
                self.is_derived(kw.value) for kw in node.keywords
            )
        if isinstance(node, (ast.Compare, ast.BoolOp, ast.Constant)):
            return False
        for child in ast.iter_child_nodes(node):
            if self.is_derived(child):
                return True
        return False

    # -- statement walk ------------------------------------------------------
    def _assign(self, target: ast.expr, derived: bool) -> None:
        if isinstance(target, ast.Name):
            if derived:
                self.derived.add(target.id)
            else:
                self.derived.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, derived)
        elif isinstance(target, ast.Subscript):
            # results[key] = derived  =>  the container is derived
            if derived and isinstance(target.value, ast.Name):
                self.derived.add(target.value.id)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, derived)

    @staticmethod
    def _shallow_exprs(stmt: ast.stmt) -> List[ast.AST]:
        """Expressions evaluated *at this statement's own level*.

        Compound statements contribute only their headers; their bodies
        are walked recursively with correct branch merging — walking
        the whole subtree here would let a verifier call inside one
        branch mark the pre-branch state verified.
        """
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(
            stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return []
        return [stmt]

    def _check_calls(self, stmt: ast.stmt) -> None:
        for expr in self._shallow_exprs(stmt):
            self._check_call_exprs(expr)

    def _check_call_exprs(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            if self._is_verifier_call(node):
                self.verified = True
                continue
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else None
            )
            if name in trustmap.MUTATOR_METHODS and not self.verified:
                self.findings.append(
                    Finding(
                        RULE,
                        self.path,
                        node.lineno,
                        f"mutation of the authenticated structure via "
                        f"`{name}` before any MAC/set-hash verification "
                        "on this path",
                    )
                )

    def run_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.run_stmt(stmt)

    def run_stmt(self, stmt: ast.stmt) -> None:
        # Verifier/mutator calls anywhere in the statement, in source
        # order relative to the statements around them.
        self._check_calls(stmt)
        if isinstance(stmt, (ast.Return,)):
            if self.is_derived(stmt.value) and not self.verified:
                self.findings.append(
                    Finding(
                        RULE,
                        self.path,
                        stmt.lineno,
                        "returns plaintext decrypted from untrusted memory "
                        "with no MAC/set-hash verification on this path",
                    )
                )
            return
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            if self.is_derived(stmt.value.value) and not self.verified:
                self.findings.append(
                    Finding(
                        RULE,
                        self.path,
                        stmt.lineno,
                        "yields plaintext decrypted from untrusted memory "
                        "with no MAC/set-hash verification on this path",
                    )
                )
            return
        if isinstance(stmt, ast.Assign):
            derived = self.is_derived(stmt.value)
            for target in stmt.targets:
                self._assign(target, derived)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self.is_derived(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._assign(
                stmt.target,
                self.is_derived(stmt.target) or self.is_derived(stmt.value),
            )
        elif isinstance(stmt, ast.If):
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._assign(stmt.target, self.is_derived(stmt.iter))
            # Batched operations verify inside their loops: treat the
            # body as executed (the empty-batch case returns no data).
            for _ in range(2):
                self.run_body(stmt.body)
            self.run_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self.run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run_body(stmt.body)
            for handler in stmt.handlers:
                self.run_body(handler.body)
            self.run_body(stmt.orelse)
            self.run_body(stmt.finalbody)

    def _branch(self, branches: List[List[ast.stmt]]) -> None:
        """Derived merges with union; ``verified`` merges with AND."""
        derived_before = set(self.derived)
        verified_before = self.verified
        merged_derived = set(derived_before)
        merged_verified = True
        for body in branches:
            self.derived = set(derived_before)
            self.verified = verified_before
            self.run_body(body)
            merged_derived |= self.derived
            merged_verified = merged_verified and self.verified
        self.derived = merged_derived
        self.verified = merged_verified


def _class_findings(
    path: str, klass: ast.ClassDef, findings: List[Finding]
) -> None:
    methods: Dict[str, ast.AST] = {
        stmt.name: stmt
        for stmt in klass.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    prims = {name: _called_names(func) for name, func in methods.items()}
    selfcalls = {
        name: _self_called_names(func) for name, func in methods.items()
    }
    producers = _fixpoint(prims, selfcalls, set(trustmap.PRODUCER_METHODS))
    verifiers = {
        name
        for name in methods
        if name.startswith("_verify")
    }
    verifiers |= _fixpoint(
        prims, selfcalls, set(trustmap.VERIFIER_METHODS) | verifiers
    )
    for name, func in methods.items():
        if name.startswith("_"):
            continue  # helpers are covered through their public callers
        if name not in producers:
            continue  # never touches decrypted untrusted data
        walker = _MethodWalk(path, findings, producers, verifiers)
        walker.run_body(list(func.body))


def run(path: str, tree: ast.Module) -> List[Finding]:
    """Run the verify-before-use pass over one store module."""
    if not any(fnmatch.fnmatch(path, pat) for pat in VERIFY_MODULES):
        return []
    findings: List[Finding] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            _class_findings(path, stmt, findings)
    return findings
