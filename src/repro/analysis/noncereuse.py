"""Nonce-reuse must-analysis (rule ``nonce-reuse``).

CTR-mode confidentiality dies the moment a (key, counter-block) pair
repeats: XORing two ciphertexts under the same keystream yields the XOR
of the plaintexts.  The modules that hold counter state — the cipher
substrate, the secure channels, the WAL, the shm rings, the store's IV
allocator and the sealing service — therefore treat every sequence
number and counter as a *monotone lattice value*: it may only move up
while its key lives, and may only return to zero together with a key
rotation.

The pass checks that discipline syntactically, per function, over the
modules listed in :data:`NONCE_MODULES`:

* **reset without rotation** — an assignment of a constant to a
  counter-named attribute (``self._seq = 0``) outside ``__init__`` is
  flagged unless the same function also rotates key material (assigns a
  ``*suite*``/``*key*`` attribute or calls a rekey/rotate helper): the
  counter restarted but the key did not change.
* **counter decrement** — ``-=`` or ``x = x - n`` on a counter-named
  attribute can never be monotone.
* **single-block IV stepping** — a bare ``increment_iv_ctr(iv)`` call
  outside the defining module advances the combined IV/counter by ONE
  keystream block, which only yields a fresh (key, IV) span for
  payloads of at most one block; multi-block payloads overlap the
  previous span.  Callers must advance by the payload's block count or
  allocate from a monotone per-instance allocator.

Counter-ness is name-based: an attribute whose ``_``-split components
contain one of :data:`COUNTER_TOKENS` (``seq``, ``ctr``, ``counter``).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding

RULE = "nonce-reuse"
DOC_URL = "docs/INTERNALS.md#nonce-monotonicity-nonce-reuse"
REMEDIATION = (
    "counters only reset together with a key rotation; advance IVs by "
    "the payload's block count, never by a fixed single block"
)

# Modules whose counter discipline the pass enforces (repo-relative).
NONCE_MODULES = (
    "crypto/ctr.py",
    "crypto/suite.py",
    "crypto/fast.py",
    "net/message.py",
    "net/sessions.py",
    "core/wal.py",
    "core/shmring.py",
    "core/store.py",
    "sim/sealing.py",
)

# The module that *defines* increment_iv_ctr (exempt from the
# single-block-stepping check — it implements the primitive).
_DEFINING_MODULE = "crypto/ctr.py"

COUNTER_TOKENS = frozenset({"seq", "ctr", "counter"})

# Attribute-name fragments whose assignment counts as key rotation.
_ROTATION_FRAGMENTS = ("suite", "key")

# Called names that rotate key material.
_ROTATION_CALLS = frozenset(
    {"rekey", "rotate", "_suite_for", "_derive_channel", "make_suite"}
)

# Methods that may initialize counters from scratch: the object is not
# yet shared and its key material is being set up in the same breath.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "reset", "close"})


def is_nonce_module(path: str) -> bool:
    return path in NONCE_MODULES


def _is_counter_attr(node: ast.expr) -> Optional[str]:
    """The attribute name when ``node`` is a counter-named attribute."""
    if not isinstance(node, ast.Attribute):
        return None
    parts = [p for p in node.attr.lower().split("_") if p]
    if any(part in COUNTER_TOKENS for part in parts):
        return node.attr
    return None


def _rotates_keys(func: ast.AST) -> bool:
    """Does this function also rotate key material somewhere?"""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and any(
                    fragment in target.attr.lower()
                    for fragment in _ROTATION_FRAGMENTS
                ):
                    return True
        if isinstance(node, ast.Call):
            func_node = node.func
            name = (
                func_node.attr
                if isinstance(func_node, ast.Attribute)
                else func_node.id
                if isinstance(func_node, ast.Name)
                else None
            )
            if name in _ROTATION_CALLS:
                return True
    return False


def _decrements(value: ast.expr, target: ast.Attribute) -> bool:
    """Is ``value`` of the form ``<target> - k``?"""
    if not isinstance(value, ast.BinOp) or not isinstance(value.op, ast.Sub):
        return False
    left = value.left
    return (
        isinstance(left, ast.Attribute) and left.attr == target.attr
    )


def _check_function(path: str, func: ast.AST, name: str) -> List[Finding]:
    findings: List[Finding] = []
    exempt_reset = name in _CONSTRUCTION_METHODS
    rotates = _rotates_keys(func)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = (
                    _is_counter_attr(target)
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if attr is None:
                    continue
                assert isinstance(target, ast.Attribute)
                if (
                    isinstance(node.value, ast.Constant)
                    and not exempt_reset
                    and not rotates
                ):
                    findings.append(
                        Finding(
                            RULE,
                            path,
                            node.lineno,
                            f"counter {attr!r} reset to a constant in "
                            f"{name}() without rotating key material: the "
                            "next seal reuses (key, IV) pairs",
                        )
                    )
                if _decrements(node.value, target):
                    findings.append(
                        Finding(
                            RULE,
                            path,
                            node.lineno,
                            f"counter {attr!r} decremented in {name}(): "
                            "counters are monotone while their key lives",
                        )
                    )
        elif isinstance(node, ast.AugAssign):
            attr = (
                _is_counter_attr(node.target)
                if isinstance(node.target, ast.Attribute)
                else None
            )
            if attr is not None and isinstance(node.op, ast.Sub):
                findings.append(
                    Finding(
                        RULE,
                        path,
                        node.lineno,
                        f"counter {attr!r} decremented in {name}(): "
                        "counters are monotone while their key lives",
                    )
                )
        elif isinstance(node, ast.Call):
            func_node = node.func
            called = (
                func_node.id
                if isinstance(func_node, ast.Name)
                else func_node.attr
                if isinstance(func_node, ast.Attribute)
                else None
            )
            if (
                called == "increment_iv_ctr"
                and path != _DEFINING_MODULE
                and len(node.args) == 1
                and not node.keywords
            ):
                findings.append(
                    Finding(
                        RULE,
                        path,
                        node.lineno,
                        "increment_iv_ctr(iv) advances ONE keystream "
                        "block; a multi-block payload overlaps the "
                        "previous span — advance by the payload's block "
                        "count or use a per-instance IV allocator",
                    )
                )
    return findings


def run(path: str, tree: ast.AST) -> List[Finding]:
    """Check one module's counter discipline (no-op outside the scope)."""
    if not is_nonce_module(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_function(path, node, node.name))
    return findings
