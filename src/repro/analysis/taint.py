"""Trust-boundary taint pass (rule ``trust-boundary``).

A forward, intraprocedural may-taint analysis over every function of a
trusted or boundary module.  *Taint* marks values that carry enclave
plaintext: client keys/values entering the trusted API surface,
results of decrypt/unseal calls, and in-enclave key material.

Taint propagates through assignments, arithmetic/concatenation,
subscripts, f-strings and ordinary calls; it is *cleared* by sanitizers
(encrypt/seal/MAC/keyed-hash — their outputs are safe ciphertext or
digests) and by declassifiers (``len`` and friends, which keep no
plaintext bytes).  A finding is emitted when a tainted expression is an
argument of an untrusted sink:

* pipe/socket sends (``send_bytes``, ``sendall``, ``_send_frame``...);
* writes into simulated memory (``mem.write`` / ``raw_write`` — the
  store's table lives in the untrusted region);
* subscript stores into SharedMemory segments (``shm.buf[a:b] = x`` —
  the ring buffers of the shm data plane are host-visible);
* host-visible output (``print``, ``logging``);
* exception constructors — raised errors cross the worker pipe and can
  reach logs, so their messages must not embed plaintext.

Branches merge with set-union (may-analysis): a value tainted on any
path is treated as tainted afterwards.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis import trustmap
from repro.analysis.findings import Finding

RULE = "trust-boundary"
DOC_URL = "docs/INTERNALS.md#static-analysis-shieldlint"
REMEDIATION = (
    "Pass the value through an encrypt/seal/MAC call before it reaches "
    "an untrusted sink, or reclassify the module in trustmap if the "
    "data is genuinely public."
)


def _call_name(call: ast.Call) -> Optional[str]:
    """The called attribute or plain name, if syntactically evident."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _receiver_text(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover - unparse is total on asts
            return ""
    return ""


def _is_sanitizer(call: ast.Call) -> bool:
    name = _call_name(call)
    if name in trustmap.SANITIZER_METHODS:
        # ``seal``/``mac``... are attribute calls on suites/channels;
        # a bare name of the same spelling still counts (helpers).
        return True
    return False


def _is_source(call: ast.Call) -> bool:
    name = _call_name(call)
    if name not in trustmap.TAINT_SOURCE_METHODS:
        return False
    # Only attribute calls: the builtin ``open(path)`` is a plain name.
    return isinstance(call.func, ast.Attribute)


def _is_declassifier(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Name)
        and call.func.id in trustmap.DECLASSIFIERS
    )


def _sink_label(call: ast.Call) -> Optional[str]:
    """Non-None when ``call`` moves bytes out of the trusted domain."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in trustmap.SINK_FUNCTIONS:
            return func.id
        return None
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    if name in trustmap.SINK_METHODS:
        return f"{_receiver_text(call)}.{name}"
    if name in trustmap.LOG_METHODS:
        receiver = _receiver_text(call)
        if "log" in receiver.lower():
            return f"{receiver}.{name}"
        return None
    if name == "write":
        receiver = _receiver_text(call)
        lowered = receiver.lower()
        if any(hint in lowered for hint in trustmap.WRITE_SINK_RECEIVER_HINT):
            return f"{receiver}.write"
    return None


def _shm_store_label(target: ast.expr) -> Optional[str]:
    """Non-None when an assignment target stores into shared memory."""
    if not isinstance(target, ast.Subscript):
        return None
    try:
        receiver = ast.unparse(target.value)
    except Exception:  # pragma: no cover - unparse is total on asts
        return None
    lowered = receiver.lower()
    if any(hint in lowered for hint in trustmap.SHM_SINK_RECEIVER_HINT):
        return receiver
    return None


class _FunctionTaint:
    """Taint state and finding collection for one function body."""

    def __init__(
        self, path: str, findings: List[Finding], trusted: bool
    ) -> None:
        self.path = path
        self.findings = findings
        self.trusted = trusted
        self.tainted: Set[str] = set()

    # -- expression query ----------------------------------------------------
    def is_tainted(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if node.attr in trustmap.SECRET_ATTRS:
                return True
            return self.is_tainted(node.value)
        if isinstance(node, ast.Call):
            if _is_source(node):
                return True
            if _is_sanitizer(node) or _is_declassifier(node):
                return False
            # a method call on a tainted receiver keeps its bytes
            # (``record.encode()``, ``value.hex()``)
            if isinstance(node.func, ast.Attribute) and self.is_tainted(
                node.func.value
            ):
                return True
            return any(self.is_tainted(a) for a in node.args) or any(
                self.is_tainted(kw.value) for kw in node.keywords
            )
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return False  # boolean results carry no plaintext bytes
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return any(self.is_tainted(v) for v in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return any(self.is_tainted(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(self.is_tainted(v) for v in node.values if v) or any(
                self.is_tainted(k) for k in node.keys if k
            )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.is_tainted(node.elt) or any(
                self.is_tainted(g.iter) for g in node.generators
            )
        if isinstance(node, ast.DictComp):
            return (
                self.is_tainted(node.key)
                or self.is_tainted(node.value)
                or any(self.is_tainted(g.iter) for g in node.generators)
            )
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom, ast.Yield)):
            return self.is_tainted(getattr(node, "value", None))
        if isinstance(node, ast.Slice):
            return False
        if isinstance(node, ast.Constant):
            return False
        # Conservative default for rarely-seen nodes: not tainted.
        return False

    # -- sink checks ---------------------------------------------------------
    def check_sinks(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                label = _sink_label(node)
                if label is None:
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords]
                if any(self.is_tainted(a) for a in args):
                    self.findings.append(
                        Finding(
                            RULE,
                            self.path,
                            node.lineno,
                            f"plaintext-bearing value reaches untrusted sink "
                            f"`{label}` without passing through an "
                            "encrypt/seal/MAC call",
                        )
                    )

    def check_shm_store(self, targets: List[ast.expr], value: ast.expr) -> None:
        """Flag tainted subscript stores into SharedMemory buffers."""
        for target in targets:
            label = _shm_store_label(target)
            if label is not None and self.is_tainted(value):
                self.findings.append(
                    Finding(
                        RULE,
                        self.path,
                        target.lineno,
                        f"plaintext-bearing value stored into host-visible "
                        f"shared memory `{label}[...]` without passing "
                        "through an encrypt/seal/MAC call",
                    )
                )

    def check_raise(self, stmt: ast.Raise) -> None:
        exc = stmt.exc
        if exc is None:
            return
        if isinstance(exc, ast.Call):
            args = list(exc.args) + [kw.value for kw in exc.keywords]
            if any(self.is_tainted(a) for a in args):
                self.findings.append(
                    Finding(
                        RULE,
                        self.path,
                        stmt.lineno,
                        "plaintext-bearing value embedded in an exception: "
                        "error messages cross the worker pipe and host logs; "
                        "redact with keyring.redact() or drop the value",
                    )
                )

    # -- assignment / statement processing ----------------------------------
    def _assign_target(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, tainted)
        # attribute/subscript stores: no per-name tracking

    def run_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.run_stmt(stmt)

    def run_stmt(self, stmt: ast.stmt) -> None:
        self.check_sinks(stmt)
        if isinstance(stmt, ast.Raise):
            self.check_raise(stmt)
            return
        if isinstance(stmt, ast.Assign):
            self.check_shm_store(stmt.targets, stmt.value)
            tainted = self.is_tainted(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, tainted)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.check_shm_store([stmt.target], stmt.value)
                self._assign_target(stmt.target, self.is_tainted(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self.check_shm_store([stmt.target], stmt.value)
            already = self.is_tainted(stmt.target)
            self._assign_target(
                stmt.target, already or self.is_tainted(stmt.value)
            )
        elif isinstance(stmt, ast.If):
            self._run_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign_target(stmt.target, self.is_tainted(stmt.iter))
            # Two passes reach loop-carried taint; union keeps may-taint.
            for _ in range(2):
                self._run_branches([stmt.body])
            self._run_branches([stmt.orelse])
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                self._run_branches([stmt.body])
            self._run_branches([stmt.orelse])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._assign_target(
                        item.optional_vars, self.is_tainted(item.context_expr)
                    )
            self.run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._run_branches(
                [stmt.body]
                + [h.body for h in stmt.handlers]
                + [stmt.orelse, stmt.finalbody]
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyze_function(stmt, self.path, self.findings, self.trusted)
        # Return / Expr / Pass / Delete / imports: sinks already checked.

    def _run_branches(self, branches: List[List[ast.stmt]]) -> None:
        """Run each branch from the current state; merge with union."""
        before = set(self.tainted)
        merged = set(before)
        for body in branches:
            if not body:
                continue
            self.tainted = set(before)
            self.run_body(body)
            merged |= self.tainted
        self.tainted = merged


def analyze_function(
    func: ast.AST, path: str, findings: List[Finding], trusted: bool
) -> None:
    state = _FunctionTaint(path, findings, trusted)
    if trusted:
        args = func.args
        params = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for param in params:
            if param.arg in trustmap.PLAINTEXT_PARAMS or param.arg in (
                "items",
                "keys",
            ):
                state.tainted.add(param.arg)
    state.run_body(list(func.body))


def run(path: str, tree: ast.Module) -> List[Finding]:
    """Run the taint pass over one trusted or boundary module."""
    trusted = trustmap.is_trusted(path)
    if not trusted and not trustmap.is_boundary(path):
        return []
    findings: List[Finding] = []

    module_state = _FunctionTaint(path, findings, trusted)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyze_function(stmt, path, findings, trusted)
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyze_function(sub, path, findings, trusted)
                else:
                    module_state.run_stmt(sub)
        else:
            module_state.run_stmt(stmt)
    return findings
