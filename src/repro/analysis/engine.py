"""shieldlint driver: file collection, pass dispatch, reporting.

:func:`run_analysis` walks every ``*.py`` file under the analyzed root
(normally ``src/repro``), parses it once, and hands the tree to the
six passes — ``trust-boundary``, ``verify-before-use``, ``lock-order``,
``key-domain``, ``nonce-reuse`` and ``ct-compare`` — according to the
module's declared role in :mod:`repro.analysis.trustmap` (the
shieldcrypt rules pick their own module scope).  Suppression comments
are applied last so reports can still show what was silenced and why.

Exit-code convention (used by ``python -m repro lint``):

* ``0`` — no non-suppressed findings;
* ``1`` — at least one non-suppressed finding;
* ``2`` — the analyzer itself failed (:class:`AnalysisError`: bad
  root, unparseable source).
"""

from __future__ import annotations

import ast
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import (
    consttime,
    cryptomap,
    lockorder,
    noncereuse,
    taint,
    verifyuse,
)
from repro.analysis.findings import (
    Finding,
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

ALL_RULES: Tuple[str, ...] = (
    taint.RULE,
    verifyuse.RULE,
    lockorder.RULE,
    cryptomap.RULE,
    noncereuse.RULE,
    consttime.RULE,
)

#: Per-rule documentation pointer and one-line remediation, surfaced in
#: ``repro lint --format json`` so CI annotations can link the fix.
RULE_DOCS: Dict[str, Dict[str, str]] = {
    taint.RULE: {"doc_url": taint.DOC_URL, "remediation": taint.REMEDIATION},
    verifyuse.RULE: {
        "doc_url": verifyuse.DOC_URL,
        "remediation": verifyuse.REMEDIATION,
    },
    lockorder.RULE: {
        "doc_url": lockorder.DOC_URL,
        "remediation": lockorder.REMEDIATION,
    },
    cryptomap.RULE: {
        "doc_url": cryptomap.DOC_URL,
        "remediation": cryptomap.REMEDIATION,
    },
    noncereuse.RULE: {
        "doc_url": noncereuse.DOC_URL,
        "remediation": noncereuse.REMEDIATION,
    },
    consttime.RULE: {
        "doc_url": consttime.DOC_URL,
        "remediation": consttime.REMEDIATION,
    },
}

_SKIP_PARTS = frozenset({"__pycache__"})


class AnalysisError(Exception):
    """The analyzer could not complete (distinct from "found issues")."""


@dataclass
class Report:
    """The outcome of one analyzer run."""

    root: str
    rules: Tuple[str, ...]
    files_scanned: int
    findings: List[Finding]
    duration_s: float = 0.0
    unused_suppressions: List[Tuple[str, int]] = field(default_factory=list)
    #: Unused suppressions whose every named rule actually ran this
    #: pass — the comment silences nothing and should be deleted.
    stale_suppressions: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    def counts(self) -> Dict[str, int]:
        by_rule: Dict[str, int] = {}
        for finding in self.active:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return by_rule

    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "rules": list(self.rules),
            "rule_docs": {
                rule: dict(RULE_DOCS[rule])
                for rule in self.rules
                if rule in RULE_DOCS
            },
            "files_scanned": self.files_scanned,
            "duration_s": round(self.duration_s, 3),
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "stale_suppressions": [
                {"path": path, "line": line}
                for path, line in self.stale_suppressions
            ],
            "exit_code": self.exit_code(),
        }

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines: List[str] = []
        for finding in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        ):
            lines.append(finding.format())
            if finding.suppressed and finding.justification:
                lines.append(f"    reason: {finding.justification}")
        active = self.active
        summary = (
            f"shieldlint: {self.files_scanned} files, "
            f"{len(active)} finding(s)"
            + (f", {len(self.suppressed)} suppressed" if self.suppressed else "")
            + f" [{self.duration_s:.2f}s]"
        )
        if active:
            by_rule = ", ".join(
                f"{rule}={count}" for rule, count in sorted(self.counts().items())
            )
            summary += f" ({by_rule})"
        lines.append(summary)
        return "\n".join(lines)


def _collect_files(root: Path) -> List[Path]:
    files = [
        path
        for path in sorted(root.rglob("*.py"))
        if not (_SKIP_PARTS & set(path.parts))
    ]
    return files


def run_analysis(
    root: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> Report:
    """Run the selected passes over every module beneath ``root``."""
    if root is None:
        root_path = Path(__file__).resolve().parents[1]  # src/repro
    else:
        root_path = Path(root).resolve()
    if not root_path.is_dir():
        raise AnalysisError(f"analysis root is not a directory: {root_path}")

    selected: Tuple[str, ...]
    if rules:
        unknown = sorted(set(rules) - set(ALL_RULES))
        if unknown:
            raise AnalysisError(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"known: {', '.join(ALL_RULES)}"
            )
        selected = tuple(r for r in ALL_RULES if r in set(rules))
    else:
        selected = ALL_RULES

    started = time.monotonic()
    findings: List[Finding] = []
    suppressions: Dict[str, List[Suppression]] = {}
    edges: Set[Tuple[str, str]] = set()
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
    derive_sites: List[cryptomap.DeriveSite] = []
    files = _collect_files(root_path)

    for file_path in files:
        rel = file_path.relative_to(root_path).as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError, ValueError) as exc:
            raise AnalysisError(f"cannot analyze {rel}: {exc}") from exc
        supps = parse_suppressions(source)
        if supps:
            suppressions[rel] = supps
        if taint.RULE in selected:
            findings.extend(taint.run(rel, tree))
        if verifyuse.RULE in selected:
            findings.extend(verifyuse.run(rel, tree))
        if lockorder.RULE in selected:
            findings.extend(lockorder.run_module(rel, tree, edges, edge_sites))
        if cryptomap.RULE in selected:
            findings.extend(cryptomap.collect(rel, tree, derive_sites))
        if noncereuse.RULE in selected:
            findings.extend(noncereuse.run(rel, tree))
        if consttime.RULE in selected:
            findings.extend(consttime.run(rel, tree))

    if lockorder.RULE in selected:
        findings.extend(lockorder.cycle_findings(edges, edge_sites))
    if cryptomap.RULE in selected:
        findings.extend(cryptomap.finalize(derive_sites))

    # Loop bodies are walked twice (may-analysis): identical findings
    # from the second pass collapse here.
    seen: Set[Tuple[str, str, int, str]] = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    findings = apply_suppressions(unique, suppressions)
    unused = [
        (path, supp.line)
        for path, supps in sorted(suppressions.items())
        for supp in supps
        if supp.justification and not supp.used
    ]
    # A suppression is *stale* (safe to delete) only when every rule it
    # names actually ran this pass and still produced nothing to cover.
    stale = [
        (path, supp.line)
        for path, supps in sorted(suppressions.items())
        for supp in supps
        if supp.justification
        and not supp.used
        and set(supp.rules) <= set(selected)
    ]
    return Report(
        root=str(root_path),
        rules=selected,
        files_scanned=len(files),
        findings=findings,
        duration_s=time.monotonic() - started,
        unused_suppressions=unused,
        stale_suppressions=stale,
    )
