"""shieldlint: repo-specific static analysis for the ShieldStore tree.

The paper's security argument (§3) rests on invariants the code could
silently break: plaintext never flows from enclave code into untrusted
memory or transports, untrusted entries are MAC-verified before use,
and the multiprocess engine's locks are taken in one pinned order.
This package turns those invariants into executable AST checks:

* :mod:`repro.analysis.taint`     — trust-boundary taint pass (rule
  ``trust-boundary``): plaintext-bearing values in trusted modules must
  pass through an encrypt/seal/MAC call before reaching an untrusted
  sink (pipe, socket, untrusted memory write, log, exception message);
* :mod:`repro.analysis.verifyuse` — verify-before-use pass (rule
  ``verify-before-use``): decrypted untrusted-memory data must be
  covered by a verification call before it escapes a public API or
  feeds a mutation of the authenticated structure;
* :mod:`repro.analysis.lockorder` — lock-order pass (rule
  ``lock-order``): extracts the lock-acquisition graph of the
  concurrent modules, pins the documented ascending-worker-lock order,
  and flags unguarded mutation of shared pool state.

Run it with ``python -m repro lint``; see ``docs/INTERNALS.md`` for the
trust map, per-rule examples, and the suppression syntax
(``# shieldlint: ignore[rule] -- justification``).
"""

from repro.analysis.engine import ALL_RULES, AnalysisError, Report, run_analysis
from repro.analysis.findings import Finding

__all__ = ["ALL_RULES", "AnalysisError", "Finding", "Report", "run_analysis"]
