"""shieldlint: repo-specific static analysis for the ShieldStore tree.

The paper's security argument (§3) rests on invariants the code could
silently break: plaintext never flows from enclave code into untrusted
memory or transports, untrusted entries are MAC-verified before use,
and the multiprocess engine's locks are taken in one pinned order.
This package turns those invariants into executable AST checks:

* :mod:`repro.analysis.taint`     — trust-boundary taint pass (rule
  ``trust-boundary``): plaintext-bearing values in trusted modules must
  pass through an encrypt/seal/MAC call before reaching an untrusted
  sink (pipe, socket, untrusted memory write, log, exception message);
* :mod:`repro.analysis.verifyuse` — verify-before-use pass (rule
  ``verify-before-use``): decrypted untrusted-memory data must be
  covered by a verification call before it escapes a public API or
  feeds a mutation of the authenticated structure;
* :mod:`repro.analysis.lockorder` — lock-order pass (rule
  ``lock-order``): extracts the lock-acquisition graph of the
  concurrent modules, pins the documented ascending-worker-lock order,
  and flags unguarded mutation of shared pool state.

The **shieldcrypt** rule family covers the key schedule and nonce
discipline (§4.2's encryption is only as strong as its IVs):

* :mod:`repro.analysis.cryptomap`  — key-domain registry (rule
  ``key-domain``): every ``derive_key`` label in the tree must match a
  registered domain; the registry itself is proven collision-free,
  prefix-free and purpose-unique, and persistent domains must bind an
  incarnation component or declare an incarnation-unique IV regime;
* :mod:`repro.analysis.noncereuse` — nonce monotonicity (rule
  ``nonce-reuse``): counters feeding CTR IVs in the crypto-bearing
  modules may only grow; a reset or decrement without a key rotation
  in the same function is flagged;
* :mod:`repro.analysis.consttime`  — constant-time comparisons (rule
  ``ct-compare``): MAC/tag/token/digest values must be compared with
  ``hmac.compare_digest``, never ``==``/``!=``.

:mod:`repro.analysis.sanitizer` is the runtime counterpart: an opt-in
hook (``SHIELDSTORE_CRYPTO_SANITIZER=1``) that journals every
``(key, IV-counter-span)`` a cipher suite consumes and raises
:class:`repro.errors.NonceReuseError` on any overlap — across worker
respawns and snapshot/WAL restores too, via per-process journals and
:func:`repro.analysis.sanitizer.global_check`.

Run it with ``python -m repro lint``; see ``docs/INTERNALS.md`` for the
trust map, per-rule examples, and the suppression syntax
(``# shieldlint: ignore[rule] -- justification``).
"""

from repro.analysis.cryptomap import key_domain_table
from repro.analysis.engine import (
    ALL_RULES,
    RULE_DOCS,
    AnalysisError,
    Report,
    run_analysis,
)
from repro.analysis.findings import Finding

__all__ = [
    "ALL_RULES",
    "RULE_DOCS",
    "AnalysisError",
    "Finding",
    "Report",
    "key_domain_table",
    "run_analysis",
]
