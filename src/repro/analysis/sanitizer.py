"""Runtime crypto sanitizer: global (key, IV/counter-block) uniqueness.

The static passes prove the *structure* of the key schedule; this module
checks the actual executions.  When enabled, every CTR encryption in the
built-in cipher suites reports its (key, starting IV, payload length)
here; the sanitizer converts the payload to its keystream block span and
asserts that no two encryptions under the same key ever consume
overlapping blocks — in this process *and*, via on-disk journals, across
every process of an instrumented tree (procpool worker respawns,
snapshot/WAL recovery runs).

Enablement is inherited: :func:`enable` exports
``SHIELDSTORE_CRYPTO_SANITIZER=1`` (and the journal directory) into
``os.environ``, which multiprocessing's spawn method copies into worker
processes, so respawned partition workers instrument themselves without
any plumbing through the pool.  Each process appends
``keyid start blocks`` lines to its own journal file;
:func:`global_check` merges every journal and re-asserts uniqueness over
the whole tree.

Only *encryption* records spans — decryption legitimately revisits the
same (key, IV) pair and consumes no fresh keystream.

Overhead when disabled is one module-level boolean test per encrypt
call; the hooks live in :mod:`repro.crypto.suite`.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Tuple

from repro.errors import NonceReuseError

ENV_FLAG = "SHIELDSTORE_CRYPTO_SANITIZER"
ENV_DIR = "SHIELDSTORE_SANITIZER_DIR"

_IV_BITS = 128
_IV_MOD = 1 << _IV_BITS

# Module-level fast path: suite hooks test this before calling record().
active = False

_lock = threading.Lock()


def _key_id(key: bytes) -> str:
    return hashlib.sha256(b"shieldcrypt-keyid\x00" + key).hexdigest()[:16]


@dataclass
class _State:
    """Per-process sanitizer state (spans merged per key)."""

    journal_dir: Optional[str] = None
    journal: Optional[IO[str]] = None
    # keyid -> sorted, disjoint [start, end) spans (block units).
    spans: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    key_ids: Dict[bytes, str] = field(default_factory=dict)
    recorded: int = 0


_state: Optional[_State] = None


def _blocks_for(nbytes: int, block_size: int) -> int:
    return (nbytes + block_size - 1) // block_size


def _insert_span(
    spans: List[Tuple[int, int]], start: int, end: int, keyid: str
) -> None:
    """Insert [start, end) keeping ``spans`` sorted and disjoint."""
    index = bisect.bisect_left(spans, (start, start))
    if index > 0 and spans[index - 1][1] > start:
        prev = spans[index - 1]
        raise NonceReuseError(
            f"key {keyid}: keystream blocks [{start}, {end}) overlap "
            f"previously consumed span [{prev[0]}, {prev[1]}) — "
            "a (key, IV) pair was reused"
        )
    if index < len(spans) and spans[index][0] < end:
        nxt = spans[index]
        raise NonceReuseError(
            f"key {keyid}: keystream blocks [{start}, {end}) overlap "
            f"previously consumed span [{nxt[0]}, {nxt[1]}) — "
            "a (key, IV) pair was reused"
        )
    # Merge with contiguous neighbours so monotone allocators (the
    # store's IV allocator, channel sequence streams) stay O(1) spans.
    merged_start, merged_end = start, end
    if index > 0 and spans[index - 1][1] == start:
        merged_start = spans[index - 1][0]
        index -= 1
        del spans[index]
    if index < len(spans) and spans[index][0] == end:
        merged_end = spans[index][1]
        del spans[index]
    spans.insert(index, (merged_start, merged_end))


def _bootstrap_locked() -> _State:
    """Create per-process state (journal file included) on first use."""
    global _state
    if _state is None:
        state = _State()
        directory = os.environ.get(ENV_DIR)
        if directory:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"crypto-{os.getpid()}.journal")
            state.journal = open(path, "a", buffering=1, encoding="ascii")
            state.journal_dir = directory
        _state = state
    return _state


def enabled() -> bool:
    """Is the sanitizer recording in this process?"""
    return active


def enable(journal_dir: Optional[str] = None) -> None:
    """Start recording; export the setting to child processes.

    ``journal_dir`` makes the check cross-process: every instrumented
    process appends its spans there and :func:`global_check` merges
    them.  Without it the check is per-process only.
    """
    global active, _state
    with _lock:
        os.environ[ENV_FLAG] = "1"
        if journal_dir is not None:
            os.environ[ENV_DIR] = journal_dir
        _state = None  # re-bootstrap with the (possibly new) journal dir
        active = True


def disable() -> None:
    """Stop recording and drop state; clears the inherited env flags."""
    global active, _state
    with _lock:
        active = False
        os.environ.pop(ENV_FLAG, None)
        os.environ.pop(ENV_DIR, None)
        if _state is not None and _state.journal is not None:
            _state.journal.close()
        _state = None


def maybe_enable_from_env() -> None:
    """Self-enable when spawned with the inherited env flag set."""
    global active
    if os.environ.get(ENV_FLAG) == "1" and not active:
        with _lock:
            active = True


def record(key: bytes, iv_ctr: bytes, nbytes: int, block_size: int) -> None:
    """Account one encryption's keystream span; raise on any overlap."""
    if not active:
        return
    blocks = _blocks_for(nbytes, block_size)
    if blocks == 0:
        return  # empty payload consumes no keystream
    start = int.from_bytes(iv_ctr, "big")
    with _lock:
        state = _bootstrap_locked()
        keyid = state.key_ids.get(key)
        if keyid is None:
            keyid = state.key_ids[key] = _key_id(key)
        spans = state.spans.setdefault(keyid, [])
        end = start + blocks
        if end > _IV_MOD:  # counter wraps modulo 2^128
            _insert_span(spans, start, _IV_MOD, keyid)
            _insert_span(spans, 0, end - _IV_MOD, keyid)
        else:
            _insert_span(spans, start, end, keyid)
        state.recorded += 1
        if state.journal is not None:
            state.journal.write(f"{keyid} {start} {blocks}\n")


def stats() -> Dict[str, int]:
    """Per-process accounting: records seen, keys seen, live spans."""
    with _lock:
        if _state is None:
            return {"recorded": 0, "keys": 0, "spans": 0}
        return {
            "recorded": _state.recorded,
            "keys": len(_state.spans),
            "spans": sum(len(s) for s in _state.spans.values()),
        }


@dataclass
class GlobalReport:
    """Outcome of a cross-process journal merge."""

    processes: int
    records: int
    keys: int


def global_check(journal_dir: Optional[str] = None) -> GlobalReport:
    """Merge every process journal; raise on any cross-process overlap.

    Call from the parent once the instrumented workload (including
    worker respawns and recovery runs) has finished.
    """
    directory = journal_dir or os.environ.get(ENV_DIR)
    if not directory:
        raise NonceReuseError(
            "global_check needs a journal directory: enable(journal_dir=...)"
        )
    merged: Dict[str, List[Tuple[int, int]]] = {}
    processes = 0
    records = 0
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".journal"):
            continue
        processes += 1
        with open(os.path.join(directory, name), encoding="ascii") as fh:
            for line in fh:
                parts = line.split()
                if len(parts) != 3:
                    continue  # torn final line of a killed process
                keyid, start_s, blocks_s = parts
                start, blocks = int(start_s), int(blocks_s)
                spans = merged.setdefault(keyid, [])
                end = start + blocks
                if end > _IV_MOD:
                    _insert_span(spans, start, _IV_MOD, keyid)
                    _insert_span(spans, 0, end - _IV_MOD, keyid)
                else:
                    _insert_span(spans, start, end, keyid)
                records += 1
    return GlobalReport(
        processes=processes, records=records, keys=len(merged)
    )


# A process spawned with the flag already in its environment (procpool
# workers, recovery subprocesses) instruments itself on import.
maybe_enable_from_env()
