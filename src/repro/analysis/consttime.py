"""Constant-time comparison pass (rule ``ct-compare``).

MAC tags, authentication tokens and keyed digests must never be compared
with ``==``/``!=``: short-circuiting byte comparison leaks how many
leading bytes matched through timing, which is enough to forge a tag one
byte at a time against a networked verifier (the classic remote timing
attack on HMAC validation).  Every such comparison must go through
:func:`hmac.compare_digest`.

The pass is name-driven: a comparison operand *looks like* an
authenticator when its identifier — the attribute/variable name, split
on underscores — contains one of :data:`DIGEST_TOKENS` (``mac``,
``tag``, ``token``, ``digest``...).  Identifiers that also carry a size
or count component (``num_mac_hashes``, ``mac_size``) and ``len()``
calls are exempt: comparing lengths is not secret-dependent.

Unlike the trust-boundary pass this rule scans *every* module — the
``ext/`` and ``baselines/`` trees sit outside the declared trust map
but still verify MACs, and a timing leak there is just as real.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding

RULE = "ct-compare"
DOC_URL = "docs/INTERNALS.md#constant-time-comparisons-ct-compare"
REMEDIATION = (
    "compare MACs/tags/tokens with hmac.compare_digest(a, b), never ==/!="
)

# Identifier components that mark a value as an authenticator.
DIGEST_TOKENS = frozenset(
    {
        "mac",
        "macs",
        "cmac",
        "hmac",
        "tag",
        "tags",
        "token",
        "tokens",
        "digest",
        "digests",
        "sig",
        "sigs",
        "signature",
        "signatures",
        "hash",
        "hashes",
    }
)

# Components that mark the identifier as a *property of* an
# authenticator (its length, count, offset...) rather than its bytes.
EXEMPT_TOKENS = frozenset(
    {
        "num",
        "count",
        "counts",
        "size",
        "sizes",
        "len",
        "length",
        "idx",
        "index",
        "offset",
        "kind",
        "name",
        "type",
        "fmt",
        "width",
    }
)

# Call names whose *result* is an authenticator even when assigned to a
# neutral name: ``x != suite.mac(...)`` is still a tag comparison.
DIGEST_CALLS = frozenset({"mac", "cmac", "hmac", "digest", "hexdigest"})


def _identifier_of(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a name/attribute/subscript chain."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _looks_like_digest(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        name = _identifier_of(node.func)
        return name is not None and name.lower() in DIGEST_CALLS
    name = _identifier_of(node)
    if name is None:
        return False
    parts = [p for p in name.lower().split("_") if p]
    if any(part in EXEMPT_TOKENS for part in parts):
        return False
    return any(part in DIGEST_TOKENS for part in parts)


def _is_len_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
    )


def _is_trivial_constant(node: ast.expr) -> bool:
    """Comparisons against None/ints/enums are not byte comparisons."""
    return isinstance(node, ast.Constant) and not isinstance(
        node.value, (bytes, str)
    )


class _CompareWalker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        eq_ops = [
            op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))
        ]
        if eq_ops and not any(_is_len_call(o) for o in operands):
            hot = [o for o in operands if _looks_like_digest(o)]
            others = [o for o in operands if o not in hot]
            # Skip only authenticator-vs-trivial-constant comparisons
            # (opcode dispatch on an int, None checks).  Two hot
            # operands, or a hot operand against any value expression,
            # is a byte comparison and must be constant-time.
            trivial = bool(others) and all(
                _is_trivial_constant(o) for o in others
            )
            if hot and not trivial:
                name = _identifier_of(hot[0]) or "value"
                self.findings.append(
                    Finding(
                        RULE,
                        self.path,
                        node.lineno,
                        f"authenticator {name!r} compared with ==/!= "
                        "(timing side channel); use hmac.compare_digest",
                    )
                )
        self.generic_visit(node)


def run(path: str, tree: ast.AST) -> List[Finding]:
    """Scan one module for variable-time authenticator comparisons."""
    walker = _CompareWalker(path)
    walker.visit(tree)
    return walker.findings
