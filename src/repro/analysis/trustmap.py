"""The declared trust map: which module plays which role (paper §3).

shieldlint is a *repo-specific* analyzer, so the threat model lives
here as plain data instead of being inferred:

* **trusted** modules are the enclave: the crypto substrate, the store
  core that handles plaintext, and the enclave-side simulation
  services.  Plaintext born here (client keys/values, decrypt results,
  key material) must be encrypted, sealed or MACed before it reaches a
  sink that leaves the enclave.
* **boundary** modules move bytes between the enclave and the host:
  the networked front-ends and the multiprocess partition engine.
  They may *transport* plaintext they received from a secure channel,
  but only sealed bytes may go back out.
* everything else (experiments, workloads, baselines, the attacker,
  the host-side simulation substrate) is untrusted scaffolding and is
  not taint-checked — it never holds enclave plaintext by design.

Paths are repo-relative to the analyzed root (``src/repro``), always
with forward slashes.
"""

from __future__ import annotations

import fnmatch
from typing import Iterable, Tuple

# -- module roles ------------------------------------------------------------
TRUSTED_MODULES: Tuple[str, ...] = (
    "crypto/*.py",
    "core/entry.py",
    "core/store.py",
    "core/mactree.py",
    "core/macbucket.py",
    "core/cache.py",
    "core/maccache.py",
    "core/wal.py",
    "sim/enclave.py",
    "sim/sealing.py",
)

BOUNDARY_MODULES: Tuple[str, ...] = (
    "net/tcp.py",
    "net/server.py",
    "net/client.py",
    "core/procpool.py",
    "core/shmring.py",
    # Replication fan-out/anti-entropy: versioned records and set
    # contents cross to peer enclaves, but only inside attested sealed
    # sessions (the peer links are TCPShieldClients).
    "ext/replication.py",
)

# Modules whose lock discipline the lock-order pass analyzes.
LOCK_MODULES: Tuple[str, ...] = (
    "core/procpool.py",
    "core/partition.py",
    "net/tcp.py",
)


def _matches(path: str, patterns: Iterable[str]) -> bool:
    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)


def is_trusted(path: str) -> bool:
    return _matches(path, TRUSTED_MODULES)


def is_boundary(path: str) -> bool:
    return _matches(path, BOUNDARY_MODULES)


def is_lock_module(path: str) -> bool:
    return _matches(path, LOCK_MODULES)


# -- taint pass configuration ------------------------------------------------
# Parameters of trusted-module functions that carry plaintext by
# definition (client keys/values and key material entering the enclave
# API surface).
PLAINTEXT_PARAMS = frozenset(
    {
        "key",
        "value",
        "suffix",
        "expected",
        "new_value",
        "plaintext",
        "plain",
        "master_secret",
        "master",
    }
)

# Attribute accesses that denote in-enclave key material.
SECRET_ATTRS = frozenset(
    {"master", "enc_key", "mac_key", "index_key", "hint_key", "master_secret"}
)

# Method names whose call results are plaintext (decrypt paths).  ``open``
# means SecureChannel.open — only attribute calls count, so the builtin
# ``open(path)`` (a plain name) is never matched.
TAINT_SOURCE_METHODS = frozenset(
    {"decrypt", "decrypt_many", "unseal", "open", "iter_items"}
)

# Calls that turn plaintext into something safe to exfiltrate: ciphertext,
# MACs, keyed hashes / digests, sealed blobs.
SANITIZER_METHODS = frozenset(
    {
        "encrypt",
        "encrypt_many",
        "_encrypt_entry",  # returns (header, ciphertext, mac) — all safe
        "seal",
        "mac",
        "keyed_bucket_hash",
        "key_hint",
        "redact",
        "digest",
        "hexdigest",
        "write_section",
    }
)

# Calls whose results carry no plaintext bytes even when fed plaintext.
DECLASSIFIERS = frozenset({"len", "type", "id", "bool", "isinstance", "hash"})

# Attribute names of calls that move bytes out of the trusted domain.
SINK_METHODS = frozenset({"send_bytes", "sendall", "send", "raw_write"})

# ``.write(...)`` is a sink only when the receiver looks like memory, a
# file or a socket — plenty of innocent ``write`` methods exist.
WRITE_SINK_RECEIVER_HINT = ("mem", "stdout", "stderr", "sock", "conn", "fh", "file")

# Subscript stores whose receiver looks like a SharedMemory segment are
# sinks: the ring buffers live in host-visible shared memory, so only
# sealed bytes may be stored there (``self.shm.buf[a:b] = plaintext`` is
# an enclave leak even though no call is involved).
SHM_SINK_RECEIVER_HINT = ("shm", "shared_memory")

# Plain-name calls that are sinks (host-visible output).
SINK_FUNCTIONS = frozenset({"print", "_send_frame", "send_frame"})

# Logging-style attribute calls (host-visible output).
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

# -- verify-before-use configuration -----------------------------------------
# Producer primitives: calls that read-and-decrypt untrusted entries.
PRODUCER_METHODS = frozenset({"decrypt", "decrypt_many"})

# Verifier primitives: a call to any of these (or to a method whose name
# starts with ``_verify``) authenticates what was read.
VERIFIER_METHODS = frozenset({"verify_set", "verify", "audit"})

# Mutators of the authenticated structure: a public operation must have
# verified the covering state before calling these.
MUTATOR_METHODS = frozenset({"_update_entry", "_insert_entry", "_remove_entry"})

# -- lock-order configuration -------------------------------------------------
# Lock families, identified by the attribute path of the acquired object
# (checked against the unparsed context-manager expression).  Order in
# LOCK_ORDER is the pinned acquisition order: a lock may only be taken
# while holding locks of strictly earlier families.  The ``worker``
# family is *ordered*: several members may be held at once, but only in
# ascending partition-index order.
LOCK_FAMILY_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("store_lock", "store"),
    ("_health_lock", "health"),
    ("_alloc_lock", "alloc"),
    (".lock", "worker"),  # handle.lock / self.workers[i].lock / w.lock
)

LOCK_ORDER: Tuple[str, ...] = ("store", "worker", "health", "alloc")

# Iterables over which acquiring one worker lock per element is known to
# be ascending: ``self.workers`` is built in index order, and any name
# assigned from ``sorted(...)`` qualifies (checked in the pass).
ASCENDING_ITERABLES = ("self.workers",)

# Calls that conceptually acquire the ``worker`` family (they fan into
# ProcessPartitionPool request/scatter paths), used for cross-module
# edges such as the TCP server executing a request under store_lock.
IMPLIED_WORKER_ACQUIRE = frozenset(
    {"execute_request", "take_snapshot", "snapshot_all", "restore_all"}
)

# Shared attributes that may only be mutated while holding a lock of the
# named family, per class.  This is the "unguarded shared-state
# mutation" half of the lock-order pass.
GUARDED_ATTRS = {
    "ProcessPartitionPool": {
        "recoveries": "health",
        "ops_lost": "health",
        "_degraded": "health",
        "_recovered": "health",
        "_snapshot_sections": "health",
        "_snapshot_counter": "health",
        "_closed": "worker",
        "_broken": "health",
    },
    "_WorkerHandle": {"ops_since_snapshot": "worker"},
}

# Methods that run before the object is shared between threads (or tear
# it down after) — exempt from the guarded-mutation check.
CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__del__", "_spawn", "_terminate_all"}
)
