"""Exception hierarchy for the ShieldStore reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Security-relevant failures (integrity, replay, sealing)
have dedicated subclasses because the test suite and the paper's threat
model (Section 3.3) distinguish them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CryptoError(ReproError):
    """Malformed key/IV sizes or other misuse of the crypto substrate."""


class NonceReuseError(CryptoError):
    """The runtime crypto sanitizer observed a repeated (key, IV) span.

    Raised by :mod:`repro.analysis.sanitizer` when two CTR encryptions
    anywhere in the instrumented process tree consume overlapping
    keystream blocks under the same key — the two-time-pad condition the
    paper's IV/counter discipline (§4.2) exists to rule out."""


class IntegrityError(ReproError):
    """A MAC check failed: untrusted data was tampered with."""


class ReplayError(IntegrityError):
    """A stale-but-valid entry was replayed; caught by the MAC tree."""


class SealingError(ReproError):
    """Unsealing failed: wrong platform identity or corrupted blob."""


class RollbackError(SealingError):
    """A sealed snapshot is older than the monotonic counter allows."""


class AttestationError(ReproError):
    """Remote attestation failed (bad quote, wrong measurement)."""


class EnclaveError(ReproError):
    """Illegal enclave operation (e.g. syscall inside the enclave)."""


class EnclaveMemoryError(EnclaveError):
    """Out of enclave memory, or an access outside any allocation."""


class PointerSafetyError(EnclaveError):
    """An untrusted pointer targets the enclave's address range (§7)."""


class AllocationError(ReproError):
    """The extra heap allocator could not satisfy a request."""


class StoreError(ReproError):
    """Generic key-value store failure (bad request, closed store...)."""


class WorkerError(StoreError):
    """A partition worker process died or its pool became unusable.

    Raised by the multiprocess partition engine when a worker exits
    unexpectedly (crash, kill) or its pipe breaks; once raised, the
    owning pool refuses further requests instead of hanging on a read."""


class KeyNotFoundError(StoreError, KeyError):
    """Lookup for a key that does not exist in the store."""


class SnapshotError(StoreError):
    """Snapshot could not be written or restored."""


class ProtocolError(ReproError):
    """Malformed or unauthenticated network message."""


class UnsupportedConfigError(ReproError):
    """A comparator cannot run this configuration (e.g. Eleos's 2 GB
    memsys5 pool limit, §6.3); experiments report the cell as absent."""
