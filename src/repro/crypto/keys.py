"""Key material handling: derivation, keyed index hashing, random IVs.

The paper derives several in-enclave secrets (Figure 4): the global
encryption key, the CMAC key, a keyed-hash key for the bucket index that
hides the key distribution (§4.2), and the 1-byte key-hint function
(§5.4).  All are derived from a single master secret with domain
separation so sealing only one value restores everything.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

KEY_SIZE = 16
MASTER_SIZE = 32


def derive_key(master: bytes, label: str, size: int = KEY_SIZE) -> bytes:
    """HKDF-style expansion: HMAC(master, label) truncated to ``size``."""
    if not master:
        raise CryptoError("master secret must be non-empty")
    if size <= 0 or size > 32:
        raise CryptoError("derived key size must be in 1..32")
    return hmac.new(master, label.encode("utf-8"), hashlib.sha256).digest()[:size]


class KeyRing:
    """All secrets ShieldStore keeps inside the enclave.

    >>> ring = KeyRing(b"\\x01" * 32)
    >>> len(ring.enc_key), len(ring.mac_key)
    (16, 16)
    """

    __slots__ = ("master", "enc_key", "mac_key", "index_key", "hint_key")

    def __init__(self, master: bytes):
        if len(master) < 16:
            raise CryptoError("master secret must be at least 16 bytes")
        self.master = bytes(master)
        self.enc_key = derive_key(self.master, "shieldstore/enc")
        self.mac_key = derive_key(self.master, "shieldstore/mac")
        self.index_key = derive_key(self.master, "shieldstore/index")
        self.hint_key = derive_key(self.master, "shieldstore/hint")

    def keyed_bucket_hash(self, key: bytes, num_buckets: int) -> int:
        """Keyed hash of a client key onto a bucket index (paper §4.2).

        A keyed hash (rather than a public one) prevents an observer of the
        untrusted hash table from learning the key distribution.
        """
        if num_buckets <= 0:
            raise CryptoError("num_buckets must be positive")
        digest = hmac.new(self.index_key, key, hashlib.sha256).digest()
        return int.from_bytes(digest[:8], "big") % num_buckets

    def key_hint(self, key: bytes) -> int:
        """1-byte key hint: keyed hash of the plaintext key (paper §5.4)."""
        return hmac.new(self.hint_key, key, hashlib.sha256).digest()[0]

    def redact(self, key: bytes) -> str:
        """Short keyed tag standing in for a client key in diagnostics.

        Error messages cross the worker pipe and may end up in host
        logs, so they must never embed the plaintext key.  The tag is
        an HMAC under its own domain, so the host cannot invert it, yet
        two reports about the same key show the same tag and stay
        correlatable for the operator.
        """
        tag = hmac.new(
            self.hint_key, b"shieldstore/redact\x00" + key, hashlib.sha256
        ).hexdigest()[:12]
        return f"<key:{tag}>"
