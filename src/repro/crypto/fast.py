"""Fast hashlib-backed cipher suite for scaled benchmarks.

The reference suite (:mod:`repro.crypto.aes` / :mod:`repro.crypto.cmac`)
is pure Python; it is exactly what the paper's enclave does but costs tens
of microseconds per entry, which would dominate a 100k-entry benchmark
with *Python* overhead rather than *simulated* cycles.  This module
provides a drop-in suite built on the C-speed primitives in the standard
library:

* stream cipher: CTR-style keystream where each 32-byte keystream block is
  ``SHA-256(key || iv_ctr+i)`` — a PRF-based stream cipher with the same
  IV/counter discipline as AES-CTR;
* MAC: HMAC-SHA-256 truncated to 16 bytes, matching the CMAC tag width.

Both give real confidentiality/integrity for the tests (tampering is
detected, ciphertexts are key- and IV-dependent) while the simulator
charges *AES* cycle costs, so performance results are unaffected by the
backend choice.  The ablation bench ``bench_abl_cipher_suite`` checks the
two suites agree functionally.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

IV_SIZE = 16
MAC_SIZE = 16
_CTR_MASK = (1 << 128) - 1
CHUNK_SIZE = 32  # SHA-256 digest size: one counter step per chunk
_CHUNK = CHUNK_SIZE


def prf_keystream(key: bytes, iv_ctr: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes from SHA-256(key || counter)."""
    if len(iv_ctr) != IV_SIZE:
        raise CryptoError(f"IV/counter must be {IV_SIZE} bytes, got {len(iv_ctr)}")
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    counter = int.from_bytes(iv_ctr, "big")
    blocks = []
    for _ in range((length + _CHUNK - 1) // _CHUNK):
        blocks.append(hashlib.sha256(key + counter.to_bytes(16, "big")).digest())
        counter = (counter + 1) & _CTR_MASK
    return b"".join(blocks)[:length]


def xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings via one wide integer operation.

    CPython evaluates ``int ^ int`` in C over 30-bit limbs, so this runs
    orders of magnitude faster than a per-byte generator for entry-sized
    payloads.
    """
    if not data:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


def prf_transform(key: bytes, iv_ctr: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` by XOR with the PRF keystream."""
    return xor_bytes(data, prf_keystream(key, iv_ctr, len(data)))


def prf_transform_many(key: bytes, items) -> list:
    """Encrypt/decrypt a batch of ``(iv_ctr, data)`` pairs.

    The keystreams of the whole batch are generated in one pass and the
    XOR is performed as a single wide-integer operation over the
    concatenated payloads, amortizing the per-call Python overhead that
    dominates multi-entry encrypt/decrypt on the batched hot path.
    Returns the transformed payloads in input order.
    """
    lengths = []
    datas = []
    streams = []
    for iv_ctr, data in items:
        lengths.append(len(data))
        datas.append(data)
        streams.append(prf_keystream(key, iv_ctr, len(data)))
    joined = xor_bytes(b"".join(datas), b"".join(streams))
    out = []
    offset = 0
    for length in lengths:
        out.append(joined[offset : offset + length])
        offset += length
    return out


def hmac_tag(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA-256 truncated to the CMAC tag width (16 bytes)."""
    return hmac.new(key, message, hashlib.sha256).digest()[:MAC_SIZE]


def verify_hmac_tag(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time verification of a truncated HMAC tag."""
    return hmac.compare_digest(hmac_tag(key, message), tag)
