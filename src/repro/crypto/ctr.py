"""AES-CTR stream encryption mirroring ``sgx_aes_ctr_encrypt``.

The SGX SDK manages the IV and counter as one combined 128-bit block that
is incremented per keystream block (paper §4.2, "IV/counter management").
We follow the same convention: callers hand us a 16-byte ``iv_ctr`` value
and we treat the whole value as a big-endian counter.

CTR is symmetric, so :func:`ctr_transform` both encrypts and decrypts.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.crypto.fast import xor_bytes
from repro.errors import CryptoError

IV_SIZE = 16
_CTR_MASK = (1 << 128) - 1


def increment_iv_ctr(iv_ctr: bytes, amount: int = 1) -> bytes:
    """Increment a combined IV/counter block, wrapping modulo 2^128."""
    if len(iv_ctr) != IV_SIZE:
        raise CryptoError(f"IV/counter must be {IV_SIZE} bytes, got {len(iv_ctr)}")
    value = (int.from_bytes(iv_ctr, "big") + amount) & _CTR_MASK
    return value.to_bytes(IV_SIZE, "big")


def keystream(cipher: AES128, iv_ctr: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of CTR keystream starting at ``iv_ctr``."""
    if len(iv_ctr) != IV_SIZE:
        raise CryptoError(f"IV/counter must be {IV_SIZE} bytes, got {len(iv_ctr)}")
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    counter = int.from_bytes(iv_ctr, "big")
    blocks = []
    for _ in range((length + BLOCK_SIZE - 1) // BLOCK_SIZE):
        blocks.append(cipher.encrypt_block(counter.to_bytes(IV_SIZE, "big")))
        counter = (counter + 1) & _CTR_MASK
    return b"".join(blocks)[:length]


def ctr_transform(cipher: AES128, iv_ctr: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` under CTR mode (the two are identical)."""
    return xor_bytes(data, keystream(cipher, iv_ctr, len(data)))
