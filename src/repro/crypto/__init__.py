"""Crypto substrate: from-scratch AES-128/CTR/CMAC plus a fast suite.

Public surface:

* :class:`repro.crypto.aes.AES128` — reference block cipher (FIPS-197).
* :func:`repro.crypto.ctr.ctr_transform` — CTR mode, SGX-SDK IV/counter
  convention.
* :func:`repro.crypto.cmac.cmac` — AES-CMAC (RFC 4493).
* :class:`repro.crypto.suite.CipherSuite` and friends — pluggable
  authenticated-encryption backends.
* :class:`repro.crypto.keys.KeyRing` — in-enclave secret derivation.
"""

from repro.crypto.aes import AES128
from repro.crypto.cmac import cmac, verify_cmac
from repro.crypto.ctr import ctr_transform, increment_iv_ctr, keystream
from repro.crypto.keys import KeyRing, derive_key
from repro.crypto.suite import (
    CipherSuite,
    FastSuite,
    ReferenceSuite,
    available_suites,
    make_suite,
    register_suite,
)

__all__ = [
    "AES128",
    "CipherSuite",
    "FastSuite",
    "KeyRing",
    "ReferenceSuite",
    "available_suites",
    "cmac",
    "ctr_transform",
    "derive_key",
    "increment_iv_ctr",
    "keystream",
    "make_suite",
    "register_suite",
    "verify_cmac",
]
