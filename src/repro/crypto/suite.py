"""Pluggable cipher suites with a common interface.

Every component that encrypts or MACs (the store, sealing, network
sessions) talks to a :class:`CipherSuite` so the reference AES/CMAC suite
and the fast hashlib suite are interchangeable.  The suite also exposes
the *cost parameters* the simulator charges, so swapping backends never
changes simulated performance.
"""

from __future__ import annotations

from hmac import compare_digest
from typing import Callable, Dict

from repro.analysis import sanitizer as _sanitizer
from repro.crypto import fast as _fast
from repro.crypto.cmac import cmac_with_cipher as _cmac_with_cipher
from repro.crypto.ctr import ctr_transform as _ctr_transform
from repro.crypto.aes import AES128, BLOCK_SIZE as _AES_BLOCK
from repro.errors import CryptoError

IV_SIZE = 16
MAC_SIZE = 16
KEY_SIZE = 16


class CipherSuite:
    """Authenticated encryption services bound to one secret key pair.

    Parameters
    ----------
    enc_key:
        16-byte encryption key (the paper's "128-bit global secret key").
    mac_key:
        16-byte MAC key (the paper's CMAC key).  Kept distinct from the
        encryption key, as Figure 4 draws them.
    """

    name = "abstract"

    def __init__(self, enc_key: bytes, mac_key: bytes):
        if len(enc_key) != KEY_SIZE or len(mac_key) != KEY_SIZE:
            raise CryptoError("cipher suite keys must be 16 bytes each")
        self.enc_key = bytes(enc_key)
        self.mac_key = bytes(mac_key)

    # -- interface -----------------------------------------------------
    def encrypt(self, iv_ctr: bytes, plaintext: bytes) -> bytes:
        raise NotImplementedError

    def decrypt(self, iv_ctr: bytes, ciphertext: bytes) -> bytes:
        raise NotImplementedError

    def mac(self, message: bytes) -> bytes:
        raise NotImplementedError

    def encrypt_many(self, items) -> list:
        """Encrypt a batch of ``(iv_ctr, plaintext)`` pairs in input order.

        Suites with a batchable keystream override this to amortize the
        per-call overhead; the default simply loops.
        """
        return [self.encrypt(iv_ctr, plaintext) for iv_ctr, plaintext in items]

    def decrypt_many(self, items) -> list:
        """Decrypt a batch of ``(iv_ctr, ciphertext)`` pairs in input order."""
        return [self.decrypt(iv_ctr, ciphertext) for iv_ctr, ciphertext in items]

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Return True when ``tag`` authenticates ``message``."""
        return compare_digest(self.mac(message), tag)


class ReferenceSuite(CipherSuite):
    """From-scratch AES-128-CTR + AES-CMAC — what real ShieldStore runs."""

    name = "aes-reference"

    def __init__(self, enc_key: bytes, mac_key: bytes):
        super().__init__(enc_key, mac_key)
        self._enc_cipher = AES128(self.enc_key)
        self._mac_cipher = AES128(self.mac_key)

    def encrypt(self, iv_ctr: bytes, plaintext: bytes) -> bytes:
        if _sanitizer.active:
            _sanitizer.record(self.enc_key, iv_ctr, len(plaintext), _AES_BLOCK)
        return _ctr_transform(self._enc_cipher, iv_ctr, plaintext)

    def decrypt(self, iv_ctr: bytes, ciphertext: bytes) -> bytes:
        return _ctr_transform(self._enc_cipher, iv_ctr, ciphertext)

    def mac(self, message: bytes) -> bytes:
        return _cmac_with_cipher(self._mac_cipher, message)


class FastSuite(CipherSuite):
    """SHA-256-PRF stream cipher + truncated HMAC; used by scaled benches."""

    name = "fast-hashlib"

    def encrypt(self, iv_ctr: bytes, plaintext: bytes) -> bytes:
        if _sanitizer.active:
            _sanitizer.record(
                self.enc_key, iv_ctr, len(plaintext), _fast.CHUNK_SIZE
            )
        return _fast.prf_transform(self.enc_key, iv_ctr, plaintext)

    def decrypt(self, iv_ctr: bytes, ciphertext: bytes) -> bytes:
        return _fast.prf_transform(self.enc_key, iv_ctr, ciphertext)

    def encrypt_many(self, items) -> list:
        if _sanitizer.active:
            items = list(items)
            for iv_ctr, plaintext in items:
                _sanitizer.record(
                    self.enc_key, iv_ctr, len(plaintext), _fast.CHUNK_SIZE
                )
        return _fast.prf_transform_many(self.enc_key, items)

    def decrypt_many(self, items) -> list:
        return _fast.prf_transform_many(self.enc_key, items)

    def mac(self, message: bytes) -> bytes:
        return _fast.hmac_tag(self.mac_key, message)


_SUITES: Dict[str, Callable[[bytes, bytes], CipherSuite]] = {
    ReferenceSuite.name: ReferenceSuite,
    FastSuite.name: FastSuite,
}


def register_suite(name: str, factory: Callable[[bytes, bytes], CipherSuite]) -> None:
    """Register a custom suite factory under ``name``."""
    if name in _SUITES:
        raise CryptoError(f"cipher suite {name!r} already registered")
    _SUITES[name] = factory


def make_suite(name: str, enc_key: bytes, mac_key: bytes) -> CipherSuite:
    """Instantiate a registered suite by name."""
    try:
        factory = _SUITES[name]
    except KeyError:
        raise CryptoError(
            f"unknown cipher suite {name!r}; known: {sorted(_SUITES)}"
        ) from None
    return factory(enc_key, mac_key)


def available_suites() -> list:
    """Names of all registered suites."""
    return sorted(_SUITES)
