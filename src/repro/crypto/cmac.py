"""AES-CMAC (RFC 4493), the stand-in for ``sgx_rijndael128_cmac``.

ShieldStore attaches a 128-bit CMAC to every data entry (paper §4.2,
"MAC Hashing") and folds per-entry MACs into in-enclave bucket-set hashes
(§4.3).  This is the reference implementation; the scaled benchmarks use
the HMAC backend in :mod:`repro.crypto.fast` with identical semantics.
"""

from __future__ import annotations

from hmac import compare_digest

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.errors import CryptoError

MAC_SIZE = 16
_MSB = 1 << 127
_MASK = (1 << 128) - 1
_RB = 0x87  # the constant for 128-bit block sizes


def _left_shift_one(block_int: int) -> int:
    return (block_int << 1) & _MASK


def generate_subkeys(cipher: AES128) -> tuple:
    """Derive the K1/K2 subkeys of RFC 4493 §2.3."""
    l_value = int.from_bytes(cipher.encrypt_block(bytes(BLOCK_SIZE)), "big")
    k1 = _left_shift_one(l_value)
    if l_value & _MSB:
        k1 ^= _RB
    k2 = _left_shift_one(k1)
    if k1 & _MSB:
        k2 ^= _RB
    return k1.to_bytes(16, "big"), k2.to_bytes(16, "big")


def cmac(key: bytes, message: bytes) -> bytes:
    """Compute AES-CMAC over ``message`` with a 16-byte ``key``."""
    return cmac_with_cipher(AES128(key), message)


def cmac_with_cipher(cipher: AES128, message: bytes) -> bytes:
    """CMAC with a pre-scheduled cipher (avoids re-expanding hot keys)."""
    k1, k2 = generate_subkeys(cipher)
    n_blocks = (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE
    if n_blocks == 0:
        n_blocks = 1
        complete = False
    else:
        complete = len(message) % BLOCK_SIZE == 0
    if complete:
        last = bytes(
            a ^ b for a, b in zip(message[(n_blocks - 1) * BLOCK_SIZE :], k1)
        )
    else:
        tail = message[(n_blocks - 1) * BLOCK_SIZE :]
        padded = tail + b"\x80" + bytes(BLOCK_SIZE - len(tail) - 1)
        last = bytes(a ^ b for a, b in zip(padded, k2))
    state = bytes(BLOCK_SIZE)
    for i in range(n_blocks - 1):
        block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
        state = cipher.encrypt_block(bytes(a ^ b for a, b in zip(state, block)))
    return cipher.encrypt_block(bytes(a ^ b for a, b in zip(state, last)))


def verify_cmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time comparison of an expected CMAC tag."""
    if len(tag) != MAC_SIZE:
        raise CryptoError(f"CMAC tag must be {MAC_SIZE} bytes, got {len(tag)}")
    return compare_digest(cmac(key, message), tag)
