"""AES-128 block cipher implemented from scratch (FIPS-197).

The paper's enclave encrypts every key-value pair with
``sgx_aes_ctr_encrypt`` and authenticates it with
``sgx_rijndael128_cmac``; both sit on top of the AES-128 block function.
This module provides that block function as a reference implementation,
validated against the FIPS-197 appendix and NIST KAT vectors in the test
suite.

The implementation is a classic T-table design: the SubBytes, ShiftRows
and MixColumns steps of a round are folded into four 256-entry lookup
tables, which keeps pure-Python throughput acceptable for the functional
tests.  Scaled benchmarks default to :mod:`repro.crypto.fast` instead.

Only encryption is required by CTR and CMAC, but decryption is provided
(and tested) for completeness.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import CryptoError

BLOCK_SIZE = 16
KEY_SIZE = 16
_NUM_ROUNDS = 10

# --- S-box generation -------------------------------------------------------
#
# Rather than embedding the 256-byte S-box literal, derive it from the
# definition: multiplicative inverse in GF(2^8) followed by the affine map.
# This doubles as a self-check that our field arithmetic is right.


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    # Multiplicative inverses via exhaustive search (runs once at import).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inv[x]
        s = 0
        for bit in range(8):
            s |= (
                ((b >> bit) & 1)
                ^ ((b >> ((bit + 4) % 8)) & 1)
                ^ ((b >> ((bit + 5) % 8)) & 1)
                ^ ((b >> ((bit + 6) % 8)) & 1)
                ^ ((b >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            ) << bit
        sbox[x] = s
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# --- T-tables ---------------------------------------------------------------


def _build_enc_tables() -> List[List[int]]:
    t0 = []
    for x in range(256):
        s = SBOX[x]
        word = (
            (_gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | _gf_mul(s, 3)
        )
        t0.append(word)
    t1 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in t0]
    t2 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in t1]
    t3 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in t2]
    return [t0, t1, t2, t3]


def _build_dec_tables() -> List[List[int]]:
    d0 = []
    for x in range(256):
        s = INV_SBOX[x]
        word = (
            (_gf_mul(s, 14) << 24)
            | (_gf_mul(s, 9) << 16)
            | (_gf_mul(s, 13) << 8)
            | _gf_mul(s, 11)
        )
        d0.append(word)
    d1 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in d0]
    d2 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in d1]
    d3 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in d2]
    return [d0, d1, d2, d3]


_T0, _T1, _T2, _T3 = _build_enc_tables()
_D0, _D1, _D2, _D3 = _build_dec_tables()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> List[int]:
    """Expand a 16-byte key into 44 round-key words (FIPS-197 §5.2)."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
    for i in range(4, 4 * (_NUM_ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
            temp ^= _RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return words


def _expand_dec_key(enc_words: List[int]) -> List[int]:
    """Produce equivalent-inverse-cipher round keys from encryption keys."""
    dec = list(enc_words)
    # Reverse round order.
    grouped = [dec[i : i + 4] for i in range(0, len(dec), 4)]
    grouped.reverse()
    flat = [w for group in grouped for w in group]
    # Apply InvMixColumns to all but the first and last round keys.
    for i in range(4, 4 * _NUM_ROUNDS):
        w = flat[i]
        b0, b1, b2, b3 = (w >> 24) & 0xFF, (w >> 16) & 0xFF, (w >> 8) & 0xFF, w & 0xFF
        flat[i] = (
            _D0[SBOX[b0]] ^ _D1[SBOX[b1]] ^ _D2[SBOX[b2]] ^ _D3[SBOX[b3]]
        )
    return flat


class AES128:
    """AES-128 with a precomputed key schedule.

    Instances are immutable and safe to share across simulated threads.

    >>> cipher = AES128(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    __slots__ = ("_ek", "_dk")

    def __init__(self, key: bytes):
        self._ek = expand_key(bytes(key))
        self._dk = _expand_dec_key(self._ek)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        ek = self._ek
        s0 = int.from_bytes(block[0:4], "big") ^ ek[0]
        s1 = int.from_bytes(block[4:8], "big") ^ ek[1]
        s2 = int.from_bytes(block[8:12], "big") ^ ek[2]
        s3 = int.from_bytes(block[12:16], "big") ^ ek[3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        k = 4
        for _ in range(_NUM_ROUNDS - 1):
            n0 = (
                t0[(s0 >> 24) & 0xFF]
                ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF]
                ^ t3[s3 & 0xFF]
                ^ ek[k]
            )
            n1 = (
                t0[(s1 >> 24) & 0xFF]
                ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF]
                ^ t3[s0 & 0xFF]
                ^ ek[k + 1]
            )
            n2 = (
                t0[(s2 >> 24) & 0xFF]
                ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF]
                ^ t3[s1 & 0xFF]
                ^ ek[k + 2]
            )
            n3 = (
                t0[(s3 >> 24) & 0xFF]
                ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF]
                ^ t3[s2 & 0xFF]
                ^ ek[k + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
            k += 4
        sbox = SBOX
        o0 = (
            (sbox[(s0 >> 24) & 0xFF] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ ek[k]
        o1 = (
            (sbox[(s1 >> 24) & 0xFF] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ ek[k + 1]
        o2 = (
            (sbox[(s2 >> 24) & 0xFF] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ ek[k + 2]
        o3 = (
            (sbox[(s3 >> 24) & 0xFF] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ ek[k + 3]
        return (
            o0.to_bytes(4, "big")
            + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big")
            + o3.to_bytes(4, "big")
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        dk = self._dk
        s0 = int.from_bytes(block[0:4], "big") ^ dk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ dk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ dk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ dk[3]
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        k = 4
        for _ in range(_NUM_ROUNDS - 1):
            n0 = (
                d0[(s0 >> 24) & 0xFF]
                ^ d1[(s3 >> 16) & 0xFF]
                ^ d2[(s2 >> 8) & 0xFF]
                ^ d3[s1 & 0xFF]
                ^ dk[k]
            )
            n1 = (
                d0[(s1 >> 24) & 0xFF]
                ^ d1[(s0 >> 16) & 0xFF]
                ^ d2[(s3 >> 8) & 0xFF]
                ^ d3[s2 & 0xFF]
                ^ dk[k + 1]
            )
            n2 = (
                d0[(s2 >> 24) & 0xFF]
                ^ d1[(s1 >> 16) & 0xFF]
                ^ d2[(s0 >> 8) & 0xFF]
                ^ d3[s3 & 0xFF]
                ^ dk[k + 2]
            )
            n3 = (
                d0[(s3 >> 24) & 0xFF]
                ^ d1[(s2 >> 16) & 0xFF]
                ^ d2[(s1 >> 8) & 0xFF]
                ^ d3[s0 & 0xFF]
                ^ dk[k + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
            k += 4
        inv = INV_SBOX
        o0 = (
            (inv[(s0 >> 24) & 0xFF] << 24)
            | (inv[(s3 >> 16) & 0xFF] << 16)
            | (inv[(s2 >> 8) & 0xFF] << 8)
            | inv[s1 & 0xFF]
        ) ^ dk[k]
        o1 = (
            (inv[(s1 >> 24) & 0xFF] << 24)
            | (inv[(s0 >> 16) & 0xFF] << 16)
            | (inv[(s3 >> 8) & 0xFF] << 8)
            | inv[s2 & 0xFF]
        ) ^ dk[k + 1]
        o2 = (
            (inv[(s2 >> 24) & 0xFF] << 24)
            | (inv[(s1 >> 16) & 0xFF] << 16)
            | (inv[(s0 >> 8) & 0xFF] << 8)
            | inv[s3 & 0xFF]
        ) ^ dk[k + 2]
        o3 = (
            (inv[(s3 >> 24) & 0xFF] << 24)
            | (inv[(s2 >> 16) & 0xFF] << 16)
            | (inv[(s1 >> 8) & 0xFF] << 8)
            | inv[s0 & 0xFF]
        ) ^ dk[k + 3]
        return (
            o0.to_bytes(4, "big")
            + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big")
            + o3.to_bytes(4, "big")
        )
