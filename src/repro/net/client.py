"""Client-side helper for driving a simulated networked server."""

from __future__ import annotations

from repro.errors import KeyNotFoundError, StoreError
from repro.net.message import (
    STATUS_MISS,
    STATUS_OK,
    Request,
    decode_multi_values,
    encode_multi_items,
    encode_multi_keys,
)
from repro.net.server import NetworkedServer


class SimClient:
    """Synchronous client over a :class:`NetworkedServer`.

    The paper's load generator keeps 256 concurrent connections busy;
    with the server fully cost-accounted, a synchronous drive measures
    the same server-side saturation throughput.
    """

    def __init__(self, server: NetworkedServer):
        self.server = server

    def _call(self, op: str, key: bytes, value: bytes = b"") -> bytes:
        response = self.server.handle(Request(op, bytes(key), bytes(value)))
        if response.status == STATUS_MISS:
            raise KeyNotFoundError(key)
        if response.status != STATUS_OK:
            raise StoreError(f"server error for {op} {key!r}")
        return response.value

    def get(self, key: bytes) -> bytes:
        return self._call("get", key)

    def set(self, key: bytes, value: bytes) -> None:
        self._call("set", key, value)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self._call("append", key, suffix)

    def delete(self, key: bytes) -> None:
        self._call("delete", key)

    def increment(self, key: bytes, delta: int = 1) -> int:
        return int(self._call("increment", key, str(delta).encode()))

    def get_versioned(self, key: bytes) -> bytes:
        """Raw versioned record from a replication-capable store (VGET)."""
        return self._call("vget", key)

    def compare_and_swap(self, key: bytes, expected: bytes, new_value: bytes) -> bool:
        from repro.net.message import encode_cas_value

        return self._call("cas", key, encode_cas_value(expected, new_value)) == b"1"

    # -- pipelined batch requests ---------------------------------------
    def multi_get(self, keys) -> dict:
        """One MGET record for many keys; absent keys map to ``None``."""
        keys = [bytes(key) for key in keys]
        raw = self._call("mget", b"", encode_multi_keys(keys))
        return dict(zip(keys, decode_multi_values(raw)))

    def multi_set(self, items) -> None:
        """One MSET record carrying many ``(key, value)`` pairs."""
        self._call("mset", b"", encode_multi_items(items))

    def multi_delete(self, keys) -> dict:
        """One MDELETE record; returns ``{key: was_present}``."""
        keys = [bytes(key) for key in keys]
        raw = self._call("mdelete", b"", encode_multi_keys(keys))
        return {
            key: flag is not None
            for key, flag in zip(keys, decode_multi_values(raw))
        }

    def __len__(self) -> int:
        return len(self.server.store)
