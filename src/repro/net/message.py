"""Wire protocol between clients and the key-value server.

Plaintext request/response records::

    request:  op(1) | key_len(4) | val_len(4) | key | value
    response: status(1) | val_len(4) | value

When the session is secure (§3.2), the record is wrapped as::

    seq(8) | ciphertext | mac(16)

with the sequence number bound into the MAC, so replayed or reordered
requests are rejected (:class:`~repro.errors.ProtocolError`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.suite import CipherSuite
from repro.errors import ProtocolError
from repro.sim import faults

OP_CODES = {
    "get": 1,
    "set": 2,
    "append": 3,
    "delete": 4,
    "increment": 5,
    "cas": 6,
    # Pipelined batch operations: one wire record carries many keyed
    # operations, so the per-request network, crossing, and session
    # crypto costs are paid once per batch.
    "mget": 7,
    "mset": 8,
    "mdelete": 9,
    # Introspection: the TCP server answers with its merged StoreStats
    # (JSON) so ``repro stats --connect`` can read a live deployment.
    "stats": 10,
    # Replication group (repro.ext.replication): versioned reads, peer
    # record push (OP_REPLICATE), and the anti-entropy digest/set
    # exchange (OP_SYNC).  All flow inside the same attested sealed
    # sessions as client traffic.
    "vget": 11,
    "replicate": 12,
    "sync": 13,
}
OP_NAMES = {v: k for k, v in OP_CODES.items()}
BATCH_OPS = frozenset({"mget", "mset", "mdelete"})

STATUS_OK = 0
STATUS_MISS = 1
STATUS_ERROR = 2
# Load shed: the server is at its admission limits and refused to queue
# the request.  Sealed like every reply (a host observer cannot tell
# shed from served), retryable with backoff, never cached.
STATUS_BUSY = 3

MAC_SIZE = 16


@dataclass
class Request:
    """One decoded client request."""

    op: str
    key: bytes
    value: bytes = b""


@dataclass
class Response:
    """One decoded server response."""

    status: int
    value: bytes = b""


def encode_request(request: Request) -> bytes:
    """Serialize a request record (plaintext form)."""
    try:
        code = OP_CODES[request.op]
    except KeyError:
        raise ProtocolError(f"unknown operation {request.op!r}") from None
    return (
        struct.pack("<BII", code, len(request.key), len(request.value))
        + request.key
        + request.value
    )


def decode_request(raw: bytes) -> Request:
    """Parse a request record; raises :class:`ProtocolError` when bad."""
    if len(raw) < 9:
        raise ProtocolError("request record too short")
    code, klen, vlen = struct.unpack_from("<BII", raw, 0)
    if code not in OP_NAMES:
        raise ProtocolError(f"unknown opcode {code}")
    if len(raw) != 9 + klen + vlen:
        raise ProtocolError("request length mismatch")
    key = raw[9 : 9 + klen]
    value = raw[9 + klen :]
    return Request(OP_NAMES[code], key, value)


def encode_response(response: Response) -> bytes:
    """Serialize a response record (plaintext form)."""
    return struct.pack("<BI", response.status, len(response.value)) + response.value


def decode_response(raw: bytes) -> Response:
    """Parse a response record."""
    if len(raw) < 5:
        raise ProtocolError("response record too short")
    status, vlen = struct.unpack_from("<BI", raw, 0)
    if len(raw) != 5 + vlen:
        raise ProtocolError("response length mismatch")
    return Response(status, raw[5:])


# -- idempotency envelope -----------------------------------------------------
#
# A retried write must apply exactly once even when the first attempt's
# reply was lost, so the TCP client wraps mutating requests in a sealed
# envelope carrying a per-request idempotency token::
#
#     envelope: 0xE1 | token(16) | request record
#
# The magic byte can never collide with a bare request record, whose
# first byte is an opcode (all < 0x40), so the server accepts both forms
# and legacy clients keep working.
ENVELOPE_MAGIC = 0xE1
TOKEN_SIZE = 16


def encode_envelope(token: Optional[bytes], record: bytes) -> bytes:
    """Prepend an idempotency token to a request record (None = bare)."""
    if token is None:
        return record
    if len(token) != TOKEN_SIZE:
        raise ProtocolError(f"idempotency token must be {TOKEN_SIZE} bytes")
    return bytes([ENVELOPE_MAGIC]) + token + record


def decode_envelope(raw: bytes) -> Tuple[Optional[bytes], bytes]:
    """Split a sealed payload into (token or None, request record)."""
    if not raw or raw[0] != ENVELOPE_MAGIC:
        return None, raw
    if len(raw) < 1 + TOKEN_SIZE + 9:
        raise ProtocolError("enveloped request too short")
    return raw[1 : 1 + TOKEN_SIZE], raw[1 + TOKEN_SIZE :]


def encode_cas_value(expected: bytes, new_value: bytes) -> bytes:
    """Pack a CAS request's (expected, new) pair into the value field."""
    return struct.pack("<I", len(expected)) + expected + new_value


def decode_cas_value(value: bytes):
    """Unpack a CAS value field; raises :class:`ProtocolError` when bad."""
    if len(value) < 4:
        raise ProtocolError("CAS value field too short")
    (elen,) = struct.unpack_from("<I", value, 0)
    if 4 + elen > len(value):
        raise ProtocolError("CAS expected-length overruns the field")
    return value[4 : 4 + elen], value[4 + elen :]


# -- pipelined batch payloads (MGET / MSET / MDELETE) -------------------------
#
# A batch request/response travels in the ``value`` field of one protocol
# record:
#
#     keys:   count(4) | ( key_len(4)  | key )*
#     items:  count(4) | ( key_len(4)  | val_len(4) | key | value )*
#     values: count(4) | ( flag(1)     | val_len(4) | value )*      flag 0=hit
#
_MAX_BATCH = 1 << 20  # sanity bound against hostile count fields


def _check_count(count: int) -> None:
    if count > _MAX_BATCH:
        raise ProtocolError(f"batch of {count} exceeds the protocol limit")


def encode_multi_keys(keys) -> bytes:
    """Pack a key list into a batch request's value field."""
    keys = [bytes(key) for key in keys]
    parts = [struct.pack("<I", len(keys))]
    for key in keys:
        parts.append(struct.pack("<I", len(key)) + key)
    return b"".join(parts)


def decode_multi_keys(value: bytes) -> list:
    """Unpack a batch key list; raises :class:`ProtocolError` when bad."""
    if len(value) < 4:
        raise ProtocolError("batch key field too short")
    (count,) = struct.unpack_from("<I", value, 0)
    _check_count(count)
    keys, offset = [], 4
    for _ in range(count):
        if offset + 4 > len(value):
            raise ProtocolError("batch key record truncated")
        (klen,) = struct.unpack_from("<I", value, offset)
        offset += 4
        if offset + klen > len(value):
            raise ProtocolError("batch key overruns the field")
        keys.append(value[offset : offset + klen])
        offset += klen
    if offset != len(value):
        raise ProtocolError("batch key field has trailing bytes")
    return keys


def encode_multi_items(items) -> bytes:
    """Pack ``(key, value)`` pairs into an MSET request's value field."""
    if isinstance(items, dict):
        items = items.items()
    pairs = [(bytes(key), bytes(value)) for key, value in items]
    parts = [struct.pack("<I", len(pairs))]
    for key, value in pairs:
        parts.append(struct.pack("<II", len(key), len(value)) + key + value)
    return b"".join(parts)


def decode_multi_items(value: bytes) -> list:
    """Unpack MSET pairs; raises :class:`ProtocolError` when bad."""
    if len(value) < 4:
        raise ProtocolError("batch item field too short")
    (count,) = struct.unpack_from("<I", value, 0)
    _check_count(count)
    items, offset = [], 4
    for _ in range(count):
        if offset + 8 > len(value):
            raise ProtocolError("batch item record truncated")
        klen, vlen = struct.unpack_from("<II", value, offset)
        offset += 8
        if offset + klen + vlen > len(value):
            raise ProtocolError("batch item overruns the field")
        items.append(
            (value[offset : offset + klen], value[offset + klen : offset + klen + vlen])
        )
        offset += klen + vlen
    if offset != len(value):
        raise ProtocolError("batch item field has trailing bytes")
    return items


def encode_multi_values(values) -> bytes:
    """Pack per-key results (``None`` = miss) into a response value field."""
    parts = [struct.pack("<I", len(values))]
    for value in values:
        if value is None:
            parts.append(struct.pack("<BI", 1, 0))
        else:
            value = bytes(value)
            parts.append(struct.pack("<BI", 0, len(value)) + value)
    return b"".join(parts)


def decode_multi_values(value: bytes) -> list:
    """Unpack per-key results; misses come back as ``None``."""
    if len(value) < 4:
        raise ProtocolError("batch value field too short")
    (count,) = struct.unpack_from("<I", value, 0)
    _check_count(count)
    values, offset = [], 4
    for _ in range(count):
        if offset + 5 > len(value):
            raise ProtocolError("batch value record truncated")
        flag, vlen = struct.unpack_from("<BI", value, offset)
        offset += 5
        if offset + vlen > len(value):
            raise ProtocolError("batch value overruns the field")
        values.append(None if flag else value[offset : offset + vlen])
        offset += vlen
    if offset != len(value):
        raise ProtocolError("batch value field has trailing bytes")
    return values


class SecureChannel:
    """One endpoint of an authenticated session.

    ``role`` fixes the IV domain per direction so the client->server and
    server->client streams never reuse a (key, IV) pair.  Each endpoint
    keeps independent send/receive sequence counters; a mismatch
    (replay, reorder, truncation) fails authentication.
    """

    _DIRECTIONS = {"client": (0xC25, 0x52C), "server": (0x52C, 0xC25)}

    def __init__(self, suite: CipherSuite, role: str):
        if role not in self._DIRECTIONS:
            raise ProtocolError(f"unknown channel role {role!r}")
        self.suite = suite
        self.role = role
        self._send_domain, self._recv_domain = self._DIRECTIONS[role]
        self._send_seq = 0
        self._recv_seq = 0

    @staticmethod
    def _iv_for(seq: int, domain: int) -> bytes:
        return struct.pack("<QQ", seq, domain)

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt + MAC one record under the next send sequence."""
        seq = self._send_seq
        self._send_seq += 1
        header = struct.pack("<Q", seq)
        ciphertext = self.suite.encrypt(self._iv_for(seq, self._send_domain), plaintext)
        tag = self.suite.mac(header + ciphertext)
        sealed = header + ciphertext + tag
        hit = faults.check(f"channel.{self.role}.seal", sealed)
        if hit is not None and hit.payload is not None:
            sealed = hit.payload  # scripted corruption of the sealed record
        return sealed

    def open(self, sealed: bytes) -> bytes:
        """Verify + decrypt one record; enforces sequence monotonicity."""
        hit = faults.check(f"channel.{self.role}.open", sealed)
        if hit is not None and hit.payload is not None:
            sealed = hit.payload  # scripted corruption before authentication
        if len(sealed) < 8 + MAC_SIZE:
            raise ProtocolError("sealed record too short")
        header, ciphertext, tag = (
            sealed[:8],
            sealed[8:-MAC_SIZE],
            sealed[-MAC_SIZE:],
        )
        (seq,) = struct.unpack("<Q", header)
        if seq != self._recv_seq:
            raise ProtocolError(
                f"sequence mismatch: expected {self._recv_seq}, got {seq} "
                "(replayed or dropped record)"
            )
        if not self.suite.verify(header + ciphertext, tag):
            raise ProtocolError("record failed authentication")
        self._recv_seq += 1
        return self.suite.decrypt(self._iv_for(seq, self._recv_domain), ciphertext)
