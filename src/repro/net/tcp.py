"""Real TCP transport for the ShieldStore wire protocol.

This is a functional (not performance-modeled) networked deployment:
a background thread serves length-prefixed protocol records over a
localhost socket, with the full §3.2 session establishment — remote
attestation of the server enclave, DH key exchange, then authenticated
encryption on every record.  Used by the ``networked_cluster`` example
and the integration tests; the performance experiments use the
cost-modeled :class:`~repro.net.server.NetworkedServer` instead.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Optional

from repro.errors import KeyNotFoundError, ProtocolError, StoreError
from repro.net.message import (
    STATUS_MISS,
    STATUS_OK,
    Request,
    SecureChannel,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    Response,
)
from repro.sim.attestation import (
    AttestationService,
    DHKeyPair,
    derive_session_suite,
)
from repro.sim.sdk import sgx_read_rand

_LEN = struct.Struct("<I")


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > 64 * 1024 * 1024:
        raise ProtocolError("frame too large")
    return _recv_exact(sock, length)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            return None
        data += chunk
    return data


class TCPShieldServer:
    """Threaded TCP server fronting one ShieldStore."""

    def __init__(
        self,
        store,
        attestation: AttestationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.store = store
        self.attestation = attestation
        # Serializes store access against snapshot checkpoints: the
        # SnapshotDaemon takes this lock while serializing the store, so
        # a checkpoint is a consistent cut, never a half-applied batch.
        # (Reentrant: a request already holding it may trigger nested
        # store calls.)
        self.store_lock = threading.RLock()
        self._sock = socket.create_server((host, port))
        self.address = self._sock.getsockname()
        self._threads = []
        self._stop = threading.Event()
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)

    def start(self) -> None:
        """Begin accepting connections (returns immediately)."""
        self._accept_thread.start()

    def close(self) -> None:
        """Stop accepting and close the listening socket."""
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass

    # -- connection handling ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _handshake(self, conn: socket.socket) -> Optional[SecureChannel]:
        """Server side of the §3.2 attested handshake."""
        ctx = self.store.enclave.context()
        server_dh = DHKeyPair(sgx_read_rand(ctx, 32))
        pub_bytes = server_dh.public.to_bytes(256, "big")
        import hashlib

        quote = self.attestation.quote(
            ctx, self.store.enclave, hashlib.sha256(pub_bytes).digest()
        )
        _send_frame(
            conn,
            quote.measurement + quote.signature + quote.report_data + pub_bytes,
        )
        client_pub_raw = _recv_frame(conn)
        if client_pub_raw is None:
            return None
        client_pub = int.from_bytes(client_pub_raw, "big")
        suite = derive_session_suite(server_dh.shared_secret(client_pub))
        return SecureChannel(suite, "server")

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            try:
                channel = self._handshake(conn)
            except (ProtocolError, OSError):
                return
            if channel is None:
                return
            while not self._stop.is_set():
                try:
                    frame = _recv_frame(conn)
                except (OSError, ProtocolError):
                    return
                if frame is None:
                    return
                try:
                    raw = channel.open(frame)
                    response = self._execute(decode_request(raw))
                except ProtocolError:
                    return  # tampered traffic: drop the session
                try:
                    _send_frame(conn, channel.seal(encode_response(response)))
                except OSError:
                    return

    def _execute(self, request: Request) -> Response:
        from repro.net.server import execute_request

        with self.store_lock:
            return execute_request(self.store, request)


class SnapshotDaemon:
    """Periodic §4.4 checkpoints of a served store to a directory.

    ``take_snapshot`` is a zero-argument callable returning one snapshot
    blob (single-store or multi-partition format — both carry their
    monotonic counter at byte offset 8).  Every ``interval_s`` seconds
    the daemon takes ``lock`` (the server's ``store_lock``), produces a
    blob, and writes it atomically (temp file + ``os.replace``) as
    ``snapshot-<counter>.bin``, so a crash mid-write never leaves a
    truncated latest checkpoint.
    """

    def __init__(self, take_snapshot, directory, interval_s: float, lock=None):
        import os

        self.take_snapshot = take_snapshot
        self.directory = os.fspath(directory)
        self.interval_s = interval_s
        self.lock = lock if lock is not None else threading.RLock()
        self.snapshots_written = 0
        self.last_path: Optional[str] = None
        self.last_error: Optional[Exception] = None
        self._stopev = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="shieldstore-snapshot", daemon=True
        )
        os.makedirs(self.directory, exist_ok=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop the periodic loop (does not take a final snapshot)."""
        self._stopev.set()
        if self._thread.is_alive():
            self._thread.join(timeout=30)

    def _loop(self) -> None:
        while not self._stopev.wait(self.interval_s):
            try:
                self.run_once()
            except Exception as exc:  # keep checkpointing; surface via attr
                self.last_error = exc

    def run_once(self) -> str:
        """Take one checkpoint now; returns the file path written."""
        import os

        from repro.core.persistence import snapshot_counter

        with self.lock:
            blob = self.take_snapshot()
        counter = snapshot_counter(blob)
        path = os.path.join(self.directory, f"snapshot-{counter:012d}.bin")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.snapshots_written += 1
        self.last_path = path
        self.last_error = None
        return path

    @staticmethod
    def latest_snapshot(directory) -> Optional[str]:
        """Path of the newest checkpoint in ``directory`` (by counter).

        File names embed the zero-padded monotonic counter, so the
        lexicographically greatest name is the newest snapshot.
        """
        import glob
        import os

        paths = sorted(
            glob.glob(os.path.join(os.fspath(directory), "snapshot-*.bin"))
        )
        return paths[-1] if paths else None


class TCPShieldClient:
    """Client that attests the server before trusting the session."""

    def __init__(
        self,
        address,
        attestation: AttestationService,
        expected_measurement: bytes,
        entropy: bytes,
    ):
        self._sock = socket.create_connection(address)
        self._channel = self._handshake(attestation, expected_measurement, entropy)

    def _handshake(
        self,
        attestation: AttestationService,
        expected_measurement: bytes,
        entropy: bytes,
    ) -> SecureChannel:
        import hashlib

        from repro.sim.attestation import Quote

        frame = _recv_frame(self._sock)
        if frame is None or len(frame) < 32 + 32 + 32 + 256:
            raise ProtocolError("handshake frame truncated")
        measurement = frame[:32]
        signature = frame[32:64]
        report_data = frame[64:96]
        pub_bytes = frame[96:]
        quote = Quote(measurement, report_data, signature)
        attestation.verify(quote, expected_measurement)
        if hashlib.sha256(pub_bytes).digest() != report_data:
            raise ProtocolError("quote does not bind the server DH key")
        client_dh = DHKeyPair(entropy)
        _send_frame(self._sock, client_dh.public.to_bytes(256, "big"))
        server_pub = int.from_bytes(pub_bytes, "big")
        suite = derive_session_suite(client_dh.shared_secret(server_pub))
        return SecureChannel(suite, "client")

    def _call(self, op: str, key: bytes, value: bytes = b"") -> bytes:
        frame = self._channel.seal(encode_request(Request(op, bytes(key), bytes(value))))
        _send_frame(self._sock, frame)
        reply = _recv_frame(self._sock)
        if reply is None:
            raise ProtocolError("server closed the connection")
        response = decode_response(self._channel.open(reply))
        if response.status == STATUS_MISS:
            raise KeyNotFoundError(key)
        if response.status != STATUS_OK:
            raise StoreError(f"server error for {op}")
        return response.value

    def get(self, key: bytes) -> bytes:
        return self._call("get", key)

    def set(self, key: bytes, value: bytes) -> None:
        self._call("set", key, value)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self._call("append", key, suffix)

    def delete(self, key: bytes) -> None:
        self._call("delete", key)

    def increment(self, key: bytes, delta: int = 1) -> int:
        return int(self._call("increment", key, str(delta).encode()))

    def compare_and_swap(self, key: bytes, expected: bytes, new_value: bytes) -> bool:
        from repro.net.message import encode_cas_value

        return self._call("cas", key, encode_cas_value(expected, new_value)) == b"1"

    def multi_get(self, keys) -> dict:
        """Pipelined MGET: many keys, one wire round trip."""
        from repro.net.message import decode_multi_values, encode_multi_keys

        keys = [bytes(key) for key in keys]
        raw = self._call("mget", b"", encode_multi_keys(keys))
        return dict(zip(keys, decode_multi_values(raw)))

    def multi_set(self, items) -> None:
        """Pipelined MSET: many pairs, one wire round trip."""
        from repro.net.message import encode_multi_items

        self._call("mset", b"", encode_multi_items(items))

    def multi_delete(self, keys) -> dict:
        """Pipelined MDELETE; returns ``{key: was_present}``."""
        from repro.net.message import decode_multi_values, encode_multi_keys

        keys = [bytes(key) for key in keys]
        raw = self._call("mdelete", b"", encode_multi_keys(keys))
        return {
            key: flag is not None
            for key, flag in zip(keys, decode_multi_values(raw))
        }

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
