"""Real TCP transport for the ShieldStore wire protocol.

This is a functional (not performance-modeled) networked deployment:
a background thread serves length-prefixed protocol records over a
localhost socket, with the full §3.2 session establishment — remote
attestation of the server enclave, DH key exchange, then authenticated
encryption on every record.  Used by the ``networked_cluster`` example
and the integration tests; the performance experiments use the
cost-modeled :class:`~repro.net.server.NetworkedServer` instead.

Resilience (shieldfault)
------------------------
The §2.3 threat model hands the network to the host, so this transport
assumes frames get dropped, delayed and corrupted and keeps serving
anyway:

* :class:`TCPShieldClient` enforces connect and per-request deadlines,
  transparently re-attests and reconnects after a failure with capped
  exponential backoff plus seeded jitter, and stamps every mutating
  request with an idempotency token carried inside the sealed envelope;
* :class:`TCPShieldServer` deduplicates those tokens per client
  identity (bounded LRU, replies replayed from cache), so a retried
  write after a lost reply applies **exactly once**;
* every socket/frame crossing is a named :mod:`repro.sim.faults`
  injection point, so all of the above is reproducible on demand.

Event-loop front end
--------------------
The server is a single :mod:`selectors` event loop over non-blocking
sockets: per-connection input/output buffers, frame reassembly and
session crypto run on the loop thread, while store execution is handed
to a small thread pool (one request in flight per connection, so sealed
replies stream back in FIFO order under the channel's sequence
numbers).  Clients may pipeline — many sealed requests on the wire
before the first reply lands.

Admission control is real load shedding, not a silent close:
connections beyond ``max_connections`` (and requests beyond
``max_inflight_requests``) are answered with a **sealed STATUS_BUSY**
reply the resilient client treats as retryable-with-backoff.  Shed
connections are promoted in arrival order as admitted ones leave.
Store execution takes the reader side of a reader-writer gate
(``store_lock``): requests share, the :class:`SnapshotDaemon`'s
checkpoint cut is exclusive.

Failure counters (tampered sessions dropped, idempotent replays,
rejected connections...) are kept in :class:`~repro.core.stats.StoreStats`
form and served over the wire by the ``stats`` protocol op
(``repro stats --connect``), alongside the data-plane's
:class:`~repro.core.stats.TransportStats` (ring occupancy, doorbell
traffic, busy sheds).
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import struct
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.stats import StoreStats, TransportStats
from repro.errors import (
    AttestationError,
    KeyNotFoundError,
    ProtocolError,
    StoreError,
)
from repro.net.message import (
    STATUS_BUSY,
    STATUS_MISS,
    STATUS_OK,
    TOKEN_SIZE,
    Request,
    Response,
    SecureChannel,
    decode_envelope,
    decode_request,
    decode_response,
    encode_envelope,
    encode_request,
    encode_response,
)
from repro.sim import faults
from repro.sim.attestation import (
    AttestationService,
    DHKeyPair,
    derive_session_suite,
)
from repro.sim.sdk import sgx_read_rand

_LEN = struct.Struct("<I")

# Wire ops that mutate the store: these carry idempotency tokens so the
# server can deduplicate retries.  Reads are naturally idempotent.
MUTATING_WIRE_OPS = frozenset(
    {"set", "delete", "append", "increment", "cas", "mset", "mdelete",
     # Replication pushes are strictly-LWW idempotent already, but the
     # token costs nothing and keeps retry dedup uniform.
     "replicate"}
)


class _TransientServerError(StoreError):
    """A STATUS_ERROR reply: the server is degraded, not gone.  Retried."""


class _ServerBusyError(StoreError):
    """A STATUS_BUSY reply: the server shed the request under load.

    Retryable with backoff on the *same* session (the server keeps shed
    connections open and promotes them as capacity frees up); counted
    separately from transport-fault retries.
    """


def _send_frame(
    sock: socket.socket,
    payload: bytes,
    point: Optional[str] = None,
    link=None,
) -> None:
    if point is not None:
        hit = faults.check(point, payload, link=link)
        if hit is not None:
            if hit.kind == "drop":
                return  # the frame vanishes on the wire
            if hit.payload is not None:
                payload = hit.payload
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_frame(
    sock: socket.socket,
    point: Optional[str] = None,
    body_timeout: Optional[float] = None,
    link=None,
) -> Optional[bytes]:
    """Receive one length-prefixed frame.

    Returns ``None`` on a clean EOF *before any byte of the frame*; a
    peer dying mid-frame raises :class:`ProtocolError` — a truncated
    record is a failure, not a graceful close.  ``body_timeout``
    (seconds) bounds the wait for the body once the header has arrived,
    so a peer that stalls mid-request cannot wedge a handler forever.
    """
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > 64 * 1024 * 1024:
        raise ProtocolError("frame too large")
    if body_timeout is not None:
        sock.settimeout(body_timeout)
    body = _recv_exact(sock, length)
    if body is None and length > 0:
        raise ProtocolError(
            "truncated frame: peer closed after the length header"
        )
    if body is None:
        body = b""
    if point is not None:
        hit = faults.check(point, body, link=link)
        if hit is not None:
            if hit.kind == "drop":
                # The frame never arrived.  Receivers treat that as a
                # timeout (the sender will retry or give up), which is
                # what a genuinely lost frame looks like.
                raise socket.timeout(f"injected frame drop at {point}")
            if hit.payload is not None:
                body = hit.payload
    return body


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on EOF at a boundary.

    EOF after some bytes were already consumed means the peer died
    mid-record; that is a :class:`ProtocolError`, never mistaken for a
    graceful close.
    """
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            if data:
                raise ProtocolError(
                    f"truncated frame: peer closed with {len(data)} of "
                    f"{count} bytes received"
                )
            return None
        data += chunk
    return data


class _IdempotencyCache:
    """Bounded LRU of applied write tokens, per client identity.

    Maps ``(client_id, token) -> encoded reply`` so a retried write
    whose first reply was lost is answered from cache instead of being
    applied twice.  Both dimensions are bounded: the oldest client is
    evicted past ``max_clients``, the oldest token per client past
    ``max_tokens`` — retries arrive promptly, so a small window is
    enough, and memory stays O(clients x tokens).
    """

    def __init__(self, max_clients: int = 128, max_tokens: int = 1024):
        self.max_clients = max_clients
        self.max_tokens = max_tokens
        self._clients: "OrderedDict[bytes, OrderedDict[bytes, bytes]]" = (
            OrderedDict()
        )
        self._mutex = threading.Lock()

    def lookup(self, client_id: bytes, token: bytes) -> Optional[bytes]:
        with self._mutex:
            tokens = self._clients.get(client_id)
            if tokens is None:
                return None
            self._clients.move_to_end(client_id)
            reply = tokens.get(token)
            if reply is not None:
                tokens.move_to_end(token)
            return reply

    def store(self, client_id: bytes, token: bytes, reply: bytes) -> None:
        with self._mutex:
            tokens = self._clients.get(client_id)
            if tokens is None:
                tokens = self._clients[client_id] = OrderedDict()
            self._clients.move_to_end(client_id)
            tokens[token] = reply
            tokens.move_to_end(token)
            while len(tokens) > self.max_tokens:
                tokens.popitem(last=False)
            while len(self._clients) > self.max_clients:
                self._clients.popitem(last=False)

    def __len__(self) -> int:
        with self._mutex:
            return sum(len(tokens) for tokens in self._clients.values())


class _RWGate:
    """Reader-writer gate between request execution and checkpoints.

    Requests acquire the *shared* side (:meth:`shared`); the
    :class:`SnapshotDaemon` uses the gate as a plain context manager,
    which is the *exclusive* side — so a checkpoint is still a
    consistent cut across every in-flight request, but requests no
    longer serialize against each other.  Writer-preference: once a
    checkpoint is waiting, new readers queue behind it.  Not reentrant.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_shared(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def shared(self) -> "_SharedSide":
        return _SharedSide(self)

    # Context-manager protocol = exclusive (checkpoint) side.
    def __enter__(self) -> "_RWGate":
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        return self

    def __exit__(self, *exc) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class _SharedSide:
    """Context manager for the reader side of a :class:`_RWGate`."""

    def __init__(self, gate: _RWGate):
        self._gate = gate

    def __enter__(self) -> "_SharedSide":
        self._gate.acquire_shared()
        return self

    def __exit__(self, *exc) -> None:
        self._gate.release_shared()


class _Conn:
    """Per-connection state of the event loop."""

    __slots__ = (
        "sock", "order", "inbuf", "outbuf", "channel", "client_id",
        "dh", "shed", "pending", "inflight", "last_progress", "closing",
    )

    def __init__(self, sock: socket.socket, order: int):
        self.sock = sock
        self.order = order          # accept order, for shed promotion
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.channel: Optional[SecureChannel] = None
        self.client_id: Optional[bytes] = None
        self.dh: Optional[DHKeyPair] = None  # pending handshake keypair
        self.shed = False           # over the cap: answer sealed BUSY
        self.pending: Deque[bytes] = deque()  # opened payloads, FIFO
        self.inflight = False       # one executor task at a time
        self.last_progress = time.monotonic()
        self.closing = False        # close once outbuf drains

    @property
    def busy(self) -> bool:
        """Whether the connection has work in motion (not idle)."""
        return bool(
            self.inbuf or self.outbuf or self.pending or self.inflight
        )


class TCPShieldServer:
    """Event-loop TCP server fronting one ShieldStore.

    One :mod:`selectors` loop owns every socket: non-blocking accepts,
    per-connection buffers, frame reassembly and channel crypto.  Store
    execution runs on a small thread pool, one request in flight per
    connection (FIFO seal order), many connections in parallel when the
    store's engine allows it (process workers have per-handle locks; the
    in-process engines serialize on the exclusive gate instead).

    ``max_connections`` is backpressure, not a silent refusal: excess
    connections still get the attested handshake, but every request is
    answered with a **sealed STATUS_BUSY** until an admitted connection
    leaves and the oldest shed one is promoted.  ``max_inflight_requests``
    (``None`` = unbounded) sheds the same way when the executor queue is
    full.  ``request_deadline_s`` bounds how long one request may take on
    the wire; ``idle_timeout_s`` (``None`` = unbounded) bounds the wait
    *between* requests.  :meth:`close` drains: it stops accepting, lets
    in-flight requests finish within ``drain_timeout_s``, then severs
    stragglers and joins the loop thread.
    """

    def __init__(
        self,
        store,
        attestation: AttestationService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        request_deadline_s: Optional[float] = 30.0,
        idle_timeout_s: Optional[float] = None,
        drain_timeout_s: float = 10.0,
        max_inflight_requests: Optional[int] = None,
        executor_threads: int = 8,
    ):
        self.store = store
        self.attestation = attestation
        self.max_connections = max_connections
        self.request_deadline_s = request_deadline_s
        self.idle_timeout_s = idle_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.max_inflight_requests = max_inflight_requests
        # Reader-writer gate against snapshot checkpoints: requests take
        # the shared side, the SnapshotDaemon's `with server.store_lock:`
        # is the exclusive side — a checkpoint is a consistent cut,
        # never a half-applied batch.
        self.store_lock = _RWGate()
        # Process-worker engines are safe for concurrent parent-side
        # callers (per-handle locks); the in-process engines are not, so
        # their requests take the exclusive side instead of the shared.
        self._parallel_requests = getattr(store, "data_plane", None) is not None
        # Transport-level failure counters, merged with the store's own
        # counters by stats_snapshot(); guarded by _stats_mutex because
        # executor threads bump them too.
        self.net_stats = StoreStats()
        self.transport = TransportStats()
        self._stats_mutex = threading.Lock()
        self._idempotency = _IdempotencyCache()
        self._sock = socket.create_server((host, port))
        self._sock.setblocking(False)
        self.address = self._sock.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._sock, selectors.EVENT_READ, "accept")
        # Self-pipe: executor completions nudge the loop out of select().
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wakeup")
        self._conns: Dict[int, _Conn] = {}
        self._accepted = 0
        self._completions: Deque[Tuple[int, object]] = deque()
        self._completions_mutex = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, executor_threads),
            thread_name_prefix="shieldstore-exec",
        )
        self._stop = threading.Event()
        # Set by the CLI when a SnapshotDaemon checkpoints this server;
        # lets stats_snapshot() surface its failure counter.
        self.snapshot_daemon: Optional["SnapshotDaemon"] = None
        self._loop_thread = threading.Thread(
            target=self._loop, name="shieldstore-eventloop", daemon=True
        )

    def start(self) -> None:
        """Start the event loop (returns immediately)."""
        self._loop_thread.start()

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._stats_mutex:
            setattr(self.net_stats, name, getattr(self.net_stats, name) + amount)

    def stats_snapshot(self) -> StoreStats:
        """Store counters merged with the transport's failure counters.

        Includes the shieldfault fire count of this process's active
        plan, so a chaos run can check observed faults against the
        scripted schedule.
        """
        stats = getattr(self.store, "stats", None)
        if callable(stats):
            merged = stats()  # PartitionedShieldStore aggregates on demand
        elif isinstance(stats, StoreStats):
            merged = StoreStats().merge(stats)
        else:
            merged = StoreStats()
        with self._stats_mutex:
            merged = merged.merge(self.net_stats)
        merged.faults_injected += faults.fires()
        if self.snapshot_daemon is not None:
            merged.snapshot_failures += self.snapshot_daemon.snapshot_failures
        return merged

    def transport_snapshot(self) -> TransportStats:
        """Admission counters merged with the store's data-plane stats."""
        with self._stats_mutex:
            merged = TransportStats().merge(self.transport)
        plane = getattr(self.store, "transport_stats", None)
        if callable(plane):
            merged = merged.merge(plane())
        return merged

    @property
    def live_connections(self) -> int:
        return len(self._conns)

    def close(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight requests, join the loop.

        ``drain=False`` skips the grace period and severs connections
        immediately.
        """
        self._stop.set()
        self._wakeup()
        if self._loop_thread.is_alive():
            self._loop_thread.join(timeout=self.drain_timeout_s)
        self._executor.shutdown(wait=drain, cancel_futures=not drain)
        # The loop closed everything on its way out; sweep whatever is
        # left if it never started or got wedged.
        for conn in list(self._conns.values()):
            self._close_quietly(conn.sock)
        self._conns.clear()
        self._close_quietly(self._sock)
        self._close_quietly(self._wake_recv)
        self._close_quietly(self._wake_send)
        try:
            self._selector.close()
        except (OSError, RuntimeError):
            pass

    @staticmethod
    def _close_quietly(sock) -> None:
        try:
            sock.close()
        except OSError:
            pass

    def _wakeup(self) -> None:
        try:
            self._wake_send.send(b"\x01")
        except (BlockingIOError, OSError):
            pass  # wake buffer full means a wakeup is already pending

    # -- the event loop -----------------------------------------------------
    def _loop(self) -> None:
        try:
            while not self._stop.is_set():
                timeout = self._next_deadline()
                events = self._selector.select(timeout)
                for key, mask in events:
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wakeup":
                        self._drain_wakeups()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._readable(conn)
                        if (
                            mask & selectors.EVENT_WRITE
                            and conn.sock.fileno() != -1
                        ):
                            self._writable(conn)
                self._apply_completions()
                self._sweep_deadlines()
        finally:
            for conn in list(self._conns.values()):
                self._drop(conn)
            self._close_quietly(self._sock)

    def _next_deadline(self) -> float:
        """Select timeout: the nearest per-connection deadline, capped."""
        timeout = 0.25
        now = time.monotonic()
        for conn in self._conns.values():
            limit = (
                self.request_deadline_s if conn.busy else self.idle_timeout_s
            )
            if limit is None:
                continue
            timeout = min(timeout, max(0.0, conn.last_progress + limit - now))
        return timeout

    def _sweep_deadlines(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            if conn.inflight:
                # The store is still working; that is not a wire stall.
                conn.last_progress = now
                continue
            limit = (
                self.request_deadline_s if conn.busy else self.idle_timeout_s
            )
            if limit is not None and now - conn.last_progress > limit:
                # Mid-frame stall past the deadline or idle expiry: drop
                # the connection; the client reconnects and retries.
                self._bump("deadline_drops")
                self._drop(conn)

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    # -- accept + admission --------------------------------------------------
    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._sock.accept()
            except (BlockingIOError, OSError):
                return
            if self._stop.is_set():
                self._close_quietly(sock)
                return
            try:
                hit = faults.check("tcp.server.accept")
            except OSError:
                self._close_quietly(sock)
                continue
            if hit is not None and hit.kind in ("drop", "crash"):
                self._close_quietly(sock)
                continue
            sock.setblocking(False)
            self._accepted += 1
            conn = _Conn(sock, self._accepted)
            if self._admitted_count() >= self.max_connections:
                # Over the cap: keep the connection, shed its requests
                # with sealed BUSY replies until a slot frees up.
                conn.shed = True
                self._bump("rejected_connections")
            self._conns[id(conn)] = conn
            try:
                self._enqueue_frame(conn, self._handshake_frame(conn))
            except (OSError, StoreError):
                self._drop(conn)
                continue
            if id(conn) in self._conns:
                self._register_events(conn)

    def _admitted_count(self) -> int:
        return sum(1 for c in self._conns.values() if not c.shed)

    def _promote_shed(self) -> None:
        """Admit the oldest shed connection once a slot frees up."""
        free = self.max_connections - self._admitted_count()
        if free <= 0:
            return
        shed = sorted(
            (c for c in self._conns.values() if c.shed),
            key=lambda c: c.order,
        )
        for conn in shed[:free]:
            conn.shed = False

    def _handshake_frame(self, conn: _Conn) -> bytes:
        """Server side of the §3.2 attested handshake: the quote frame.

        Sent eagerly on accept; the client answers with its DH public
        key, whose hash becomes the client identity keying the
        idempotency cache (stable across re-attested reconnects).
        """
        import hashlib

        ctx = self.store.enclave.context()
        conn.dh = DHKeyPair(sgx_read_rand(ctx, 32))
        pub_bytes = conn.dh.public.to_bytes(256, "big")
        quote = self.attestation.quote(
            ctx, self.store.enclave, hashlib.sha256(pub_bytes).digest()
        )
        return (
            quote.measurement + quote.signature + quote.report_data + pub_bytes
        )

    def _finish_handshake(self, conn: _Conn, client_pub_raw: bytes) -> None:
        import hashlib

        if conn.dh is None:
            raise ProtocolError("handshake reply before quote was sent")
        client_pub = int.from_bytes(client_pub_raw, "big")
        suite = derive_session_suite(conn.dh.shared_secret(client_pub))
        conn.dh = None
        conn.client_id = hashlib.sha256(client_pub_raw).digest()
        conn.channel = SecureChannel(suite, "server")

    # -- socket readiness ----------------------------------------------------
    def _register_events(self, conn: _Conn) -> None:
        mask = selectors.EVENT_READ
        if conn.outbuf:
            mask |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, mask, conn)
        except KeyError:
            try:
                self._selector.register(conn.sock, mask, conn)
            except (KeyError, ValueError, OSError):
                pass

    def _readable(self, conn: _Conn) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn)
            return
        if not chunk:
            if 0 < len(conn.inbuf):
                # Peer died mid-record; nothing to salvage either way.
                pass
            self._drop(conn)
            return
        conn.inbuf += chunk
        conn.last_progress = time.monotonic()
        self._parse_frames(conn)

    def _writable(self, conn: _Conn) -> None:
        if conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._drop(conn)
                return
            del conn.outbuf[:sent]
            conn.last_progress = time.monotonic()
        if not conn.outbuf:
            if conn.closing:
                self._drop(conn)
            else:
                self._register_events(conn)

    def _parse_frames(self, conn: _Conn) -> None:
        while len(conn.inbuf) >= 4:
            (length,) = _LEN.unpack_from(conn.inbuf, 0)
            if length > 64 * 1024 * 1024:
                self._drop(conn)  # oversized frame: protocol violation
                return
            if len(conn.inbuf) < 4 + length:
                return  # partial frame: wait for more bytes
            body = bytes(conn.inbuf[4 : 4 + length])
            del conn.inbuf[: 4 + length]
            try:
                hit = faults.check("tcp.server.recv", body)
            except OSError:
                self._drop(conn)
                return
            if hit is not None:
                if hit.kind == "drop":
                    # The frame never arrived: to the peer this is a
                    # stalled request, so it costs the connection.
                    self._bump("deadline_drops")
                    self._drop(conn)
                    return
                if hit.payload is not None:
                    body = hit.payload
            if not self._handle_frame(conn, body):
                return

    def _handle_frame(self, conn: _Conn, body: bytes) -> bool:
        """Process one complete inbound frame; False if conn dropped."""
        if conn.channel is None:
            try:
                self._finish_handshake(conn, body)
            except (ProtocolError, OSError, OverflowError, ValueError):
                self._drop(conn)
                return False
            return True
        try:
            raw = conn.channel.open(body)
        except ProtocolError:
            # Tampered traffic: drop the session.  A fresh handshake
            # re-admits the client.
            self._bump("tamper_drops")
            self._drop(conn)
            return False
        if conn.shed or self._over_inflight_limit():
            self._shed_reply(conn)
            return True
        conn.pending.append(raw)
        self._pump(conn)
        return True

    def _over_inflight_limit(self) -> bool:
        if self.max_inflight_requests is None:
            return False
        inflight = sum(
            len(c.pending) + (1 if c.inflight else 0)
            for c in self._conns.values()
        )
        return inflight >= self.max_inflight_requests

    def _shed_reply(self, conn: _Conn) -> None:
        """Answer with a sealed STATUS_BUSY instead of executing."""
        with self._stats_mutex:
            self.transport.busy_sheds += 1
        out = encode_response(Response(STATUS_BUSY))
        self._seal_and_send(conn, out)

    # -- request execution ---------------------------------------------------
    def _pump(self, conn: _Conn) -> None:
        """Submit the next pending request (one in flight per conn)."""
        if conn.inflight or not conn.pending:
            return
        raw = conn.pending.popleft()
        conn.inflight = True
        conn_id = id(conn)
        future = self._executor.submit(self._dispatch, conn.client_id, raw)
        future.add_done_callback(
            lambda fut: self._complete(conn_id, fut)
        )

    def _complete(self, conn_id: int, future) -> None:
        """Executor thread: queue the result for the loop to seal."""
        with self._completions_mutex:
            self._completions.append((conn_id, future))
        self._wakeup()

    def _apply_completions(self) -> None:
        while True:
            with self._completions_mutex:
                if not self._completions:
                    return
                conn_id, future = self._completions.popleft()
            conn = self._conns.get(conn_id)
            if conn is None:
                continue  # connection died while the store worked
            conn.inflight = False
            conn.last_progress = time.monotonic()
            try:
                out = future.result()
            except ProtocolError:
                self._bump("tamper_drops")
                self._drop(conn)
                continue
            except Exception:
                self._drop(conn)
                continue
            self._seal_and_send(conn, out)
            if id(conn) in self._conns:
                self._pump(conn)

    def _seal_and_send(self, conn: _Conn, out: bytes) -> None:
        if conn.channel is None:
            self._drop(conn)
            return
        self._enqueue_frame(conn, conn.channel.seal(out))

    def _enqueue_frame(self, conn: _Conn, payload: bytes) -> None:
        """Queue one length-prefixed frame (the tcp.server.send point)."""
        try:
            hit = faults.check("tcp.server.send", payload)
        except OSError:
            self._drop(conn)
            return
        if hit is not None:
            if hit.kind == "drop":
                return  # the frame vanishes on the wire
            if hit.payload is not None:
                payload = hit.payload
        conn.outbuf += _LEN.pack(len(payload)) + payload
        # Opportunistic flush: most replies fit the socket buffer, so
        # skipping the selector round trip saves a syscall per request.
        self._writable(conn)
        if id(conn) in self._conns:
            self._register_events(conn)

    def _drop(self, conn: _Conn) -> None:
        self._conns.pop(id(conn), None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._close_quietly(conn.sock)
        self._promote_shed()

    # -- request dispatch (executor threads) ---------------------------------
    def _dispatch(self, client_id: bytes, raw: bytes) -> bytes:
        """Decode one opened payload and produce the encoded reply.

        Tokened (mutating) requests are deduplicated: a token already
        in the cache is answered with its cached reply and never
        re-executed, so a retry after a lost reply applies exactly
        once.  Error replies are *not* cached — a retry of a transiently
        failed write must re-execute, not replay the failure.
        """
        token, record = decode_envelope(raw)
        request = decode_request(record)
        if request.op == "stats":
            counters = self.stats_snapshot().snapshot_dict()
            counters.update(self.transport_snapshot().snapshot_dict())
            payload = json.dumps(counters, sort_keys=True).encode("ascii")
            return encode_response(Response(STATUS_OK, payload))
        if token is not None:
            cached = self._idempotency.lookup(client_id, token)
            if cached is not None:
                self._bump("idempotent_replays")
                return cached
        response = self._execute(request)
        if response.status not in (STATUS_OK, STATUS_MISS):
            self._bump("degraded_replies")
            return encode_response(response)
        out = encode_response(response)
        if token is not None:
            self._idempotency.store(client_id, token, out)
        return out

    def _execute(self, request: Request) -> Response:
        from repro.net.server import execute_request

        gate = (
            self.store_lock.shared()
            if self._parallel_requests
            else self.store_lock
        )
        with gate:
            return execute_request(self.store, request)


class SnapshotDaemon:
    """Periodic §4.4 checkpoints of a served store to a directory.

    ``take_snapshot`` is a zero-argument callable returning one snapshot
    blob (single-store or multi-partition format — both carry their
    monotonic counter at byte offset 8).  Every ``interval_s`` seconds
    the daemon takes ``lock`` (the server's ``store_lock``), produces a
    blob, and writes it atomically (temp file + ``os.replace``) as
    ``snapshot-<counter>.bin``, so a crash mid-write never leaves a
    truncated latest checkpoint.

    Retention: after each successful write the oldest checkpoints are
    deleted so at most ``keep`` ``snapshot-*.bin`` files remain.  Stale
    ``snapshot-*.bin.tmp`` files (a crash between temp write and rename)
    are swept at daemon start and on every prune.  Only snapshot blobs
    are touched — the monotonic-counter state file lives in the same
    directory and must survive every prune, because it is the rollback
    defense for whatever snapshot remains.

    ``on_checkpoint`` (optional) is called with the snapshot counter
    after a checkpoint is durable — written, renamed and the directory
    fsynced — which is the earliest moment write-ahead-log segments
    below that counter may be retired.
    """

    def __init__(
        self,
        take_snapshot,
        directory,
        interval_s: float,
        lock=None,
        keep: int = 5,
        on_checkpoint=None,
    ):
        self.take_snapshot = take_snapshot
        self.directory = os.fspath(directory)
        self.interval_s = interval_s
        self.lock = lock if lock is not None else threading.RLock()
        if keep < 1:
            raise StoreError(f"snapshot retention must keep >= 1, got {keep}")
        self.keep = keep
        self.on_checkpoint = on_checkpoint
        self.snapshots_written = 0
        self.snapshots_pruned = 0
        self.snapshot_failures = 0
        self.last_path: Optional[str] = None
        self.last_error: Optional[Exception] = None
        self._stopev = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="shieldstore-snapshot", daemon=True
        )
        os.makedirs(self.directory, exist_ok=True)
        # A crash between temp write and rename leaves a .tmp the
        # retention glob never matched; sweep leftovers up front.
        self._sweep_tmp()

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop the periodic loop (does not take a final snapshot)."""
        self._stopev.set()
        if self._thread.is_alive():
            self._thread.join(timeout=30)

    def _loop(self) -> None:
        while not self._stopev.wait(self.interval_s):
            try:
                self.run_once()
            except Exception as exc:  # keep checkpointing; surface + count
                self.last_error = exc
                self.snapshot_failures += 1

    def run_once(self) -> str:
        """Take one checkpoint now; returns the file path written."""
        from repro.core.persistence import snapshot_counter
        from repro.core.wal import fsync_directory

        with self.lock:
            blob = self.take_snapshot()
        counter = snapshot_counter(blob)
        path = os.path.join(self.directory, f"snapshot-{counter:012d}.bin")
        tmp = path + ".tmp"
        hit = faults.check(
            "snapshot.write", blob, on_crash=lambda: self._crash_write(tmp, blob)
        )
        if hit is not None:
            if hit.kind == "drop":
                raise StoreError("injected checkpoint drop: nothing written")
            if hit.payload is not None:
                blob = hit.payload  # scripted on-disk corruption
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # The rename is only durable once the directory entry is; fsync
        # the directory so a power cut cannot resurrect the old name.
        fsync_directory(self.directory)
        self.snapshots_written += 1
        self.last_path = path
        self.last_error = None
        if self.on_checkpoint is not None:
            self.on_checkpoint(counter)
        self._prune()
        return path

    @staticmethod
    def _crash_write(tmp: str, blob: bytes) -> None:
        """Scripted crash mid-write: leave a truncated temp file behind."""
        with open(tmp, "wb") as fh:
            fh.write(blob[: max(1, len(blob) // 2)])
        raise OSError("injected crash during checkpoint write")

    def _prune(self) -> None:
        """Delete checkpoints beyond the ``keep`` newest (by counter)."""
        import glob

        paths = sorted(
            glob.glob(os.path.join(self.directory, "snapshot-*.bin"))
        )
        for stale in paths[: -self.keep]:
            try:
                os.remove(stale)
                self.snapshots_pruned += 1
            except OSError:
                pass  # already gone or busy; retry at the next prune
        self._sweep_tmp()

    def _sweep_tmp(self) -> None:
        """Remove orphaned ``snapshot-*.bin.tmp`` files (crash debris).

        ``run_once`` renames its temp file away before this runs, so
        any ``.tmp`` seen here was abandoned by a crash mid-write; each
        one actually removed counts as pruned.
        """
        import glob

        for tmp in glob.glob(
            os.path.join(self.directory, "snapshot-*.bin.tmp")
        ):
            try:
                os.remove(tmp)
                self.snapshots_pruned += 1
            except OSError:
                pass

    @staticmethod
    def latest_snapshot(directory) -> Optional[str]:
        """Path of the newest checkpoint in ``directory`` (by counter).

        File names embed the zero-padded monotonic counter, so the
        lexicographically greatest name is the newest snapshot.
        """
        import glob

        paths = sorted(
            glob.glob(os.path.join(os.fspath(directory), "snapshot-*.bin"))
        )
        return paths[-1] if paths else None

    @staticmethod
    def load_latest(directory) -> Optional[Tuple[str, bytes]]:
        """Read the newest checkpoint; ``(path, blob)`` or ``None``.

        The read is a ``snapshot.read`` injection point, so restore-time
        corruption and I/O failures are scriptable.
        """
        path = SnapshotDaemon.latest_snapshot(directory)
        if path is None:
            return None
        with open(path, "rb") as fh:
            blob = fh.read()
        hit = faults.check("snapshot.read", blob)
        if hit is not None:
            if hit.kind == "drop":
                return None
            if hit.payload is not None:
                blob = hit.payload
        return path, blob


class TCPShieldClient:
    """Client that attests the server before trusting the session.

    Resilient by default: connect and per-request deadlines, automatic
    re-attest + reconnect with capped exponential backoff and seeded
    jitter, and idempotency tokens on every mutating request so retries
    after a lost reply are deduplicated server-side.  A request is
    retried on transport faults (timeout, reset, truncated or
    unauthenticated frames) and on transient server errors; attestation
    failures are never retried — a server that fails the measurement
    check is not a degraded peer, it is the adversary.

    ``stats`` (a :class:`~repro.core.stats.StoreStats`) counts retries,
    reconnects and timeouts on the client side.
    """

    def __init__(
        self,
        address,
        attestation: AttestationService,
        expected_measurement: bytes,
        entropy: bytes,
        connect_timeout_s: float = 10.0,
        request_deadline_s: Optional[float] = 10.0,
        max_retries: int = 4,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_seed: Optional[int] = None,
        local_name: Optional[str] = None,
        peer_name: Optional[str] = None,
    ):
        import random

        # Named link endpoints let shieldfault ``partition`` rules cut
        # exactly this edge of the replication graph.  Every inter-node
        # link has a client end, so naming the client side is enough.
        self._link = (
            (local_name, peer_name)
            if local_name is not None and peer_name is not None
            else None
        )
        self.address = address
        self.attestation = attestation
        self.expected_measurement = expected_measurement
        self.entropy = entropy
        self.connect_timeout_s = connect_timeout_s
        self.request_deadline_s = request_deadline_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.stats = StoreStats()
        self.transport = TransportStats()
        if retry_seed is None:
            retry_seed = int.from_bytes(entropy[:8], "big")
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._channel: Optional[SecureChannel] = None
        self._sessions = 0
        self._retry_loop(lambda: None, "connect")

    # -- connection lifecycle -----------------------------------------------
    def _ensure_connected(self) -> None:
        if self._channel is not None:
            return
        hit = faults.check(
            "tcp.client.connect", on_crash=self._teardown, link=self._link
        )
        if hit is not None and hit.kind == "drop":
            raise socket.timeout("injected connect drop")
        self._sock = socket.create_connection(
            self.address, timeout=self.connect_timeout_s
        )
        try:
            self._channel = self._handshake()
        except BaseException:
            self._teardown()
            raise
        self._sessions += 1
        if self._sessions > 1:
            self.stats.net_reconnects += 1

    def _teardown(self) -> None:
        self._channel = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _handshake(self) -> SecureChannel:
        import hashlib
        from hmac import compare_digest

        from repro.sim.attestation import Quote

        assert self._sock is not None
        frame = _recv_frame(self._sock, point="tcp.client.recv", link=self._link)
        if frame is None or len(frame) < 32 + 32 + 32 + 256:
            raise ProtocolError("handshake frame truncated")
        measurement = frame[:32]
        signature = frame[32:64]
        report_data = frame[64:96]
        pub_bytes = frame[96:]
        quote = Quote(measurement, report_data, signature)
        self.attestation.verify(quote, self.expected_measurement)
        if not compare_digest(hashlib.sha256(pub_bytes).digest(), report_data):
            raise ProtocolError("quote does not bind the server DH key")
        client_dh = DHKeyPair(self.entropy)
        _send_frame(
            self._sock,
            client_dh.public.to_bytes(256, "big"),
            point="tcp.client.send",
            link=self._link,
        )
        server_pub = int.from_bytes(pub_bytes, "big")
        suite = derive_session_suite(client_dh.shared_secret(server_pub))
        return SecureChannel(suite, "client")

    # -- retry machinery -----------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        """Capped exponential backoff with seeded jitter."""
        base = min(
            self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        time.sleep(base * (0.5 + 0.5 * self._rng.random()))

    def _retry_loop(self, body, what: str):
        """Run ``body`` with reconnect-and-retry on transport faults."""
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                return body()
            except AttestationError:
                # Never retried: a failed measurement check means the
                # peer is not the enclave we were told to trust.
                self._teardown()
                raise
            except _ServerBusyError as exc:
                # Load shed, not a fault: the session stays up (the
                # server keeps shed connections and promotes them when
                # capacity frees), so back off without tearing down.
                attempt += 1
                if attempt > self.max_retries:
                    raise StoreError(
                        f"{what} failed after {attempt} attempt(s): "
                        "server kept shedding load"
                    ) from exc
                self.transport.busy_retries += 1
                self._backoff(attempt)
            except _TransientServerError as exc:
                self._teardown()
                attempt += 1
                if attempt > self.max_retries:
                    raise StoreError(
                        f"{what} failed after {attempt} attempt(s): "
                        "server kept reporting an error"
                    ) from exc
                self.stats.net_retries += 1
                self._backoff(attempt)
            except (KeyNotFoundError, StoreError):
                raise
            except (OSError, ProtocolError) as exc:
                if isinstance(exc, socket.timeout):
                    self.stats.net_timeouts += 1
                self._teardown()
                attempt += 1
                if attempt > self.max_retries:
                    raise StoreError(
                        f"{what} failed after {attempt} attempt(s): {exc}"
                    ) from exc
                self.stats.net_retries += 1
                self._backoff(attempt)

    def _call(self, op: str, key: bytes, value: bytes = b"") -> bytes:
        record = encode_request(Request(op, bytes(key), bytes(value)))
        token = os.urandom(TOKEN_SIZE) if op in MUTATING_WIRE_OPS else None
        payload = encode_envelope(token, record)
        return self._retry_loop(lambda: self._roundtrip(op, payload), op)

    def _roundtrip(self, op: str, payload: bytes) -> bytes:
        assert self._sock is not None and self._channel is not None
        self._sock.settimeout(self.request_deadline_s)
        _send_frame(
            self._sock,
            self._channel.seal(payload),
            point="tcp.client.send",
            link=self._link,
        )
        reply = _recv_frame(self._sock, point="tcp.client.recv", link=self._link)
        if reply is None:
            raise ProtocolError("server closed the connection")
        response = decode_response(self._channel.open(reply))
        if response.status == STATUS_MISS:
            raise KeyNotFoundError(f"no such key (op {op})")
        if response.status == STATUS_BUSY:
            raise _ServerBusyError(f"server shed {op} under load")
        if response.status != STATUS_OK:
            # Transient server-side degradation (e.g. a partition worker
            # mid-recovery).  Retried with backoff; error replies are
            # not cached server-side, so the retry re-executes.
            raise _TransientServerError(f"server error for {op}")
        return response.value

    # -- operations ----------------------------------------------------------
    def get(self, key: bytes) -> bytes:
        return self._call("get", key)

    def set(self, key: bytes, value: bytes) -> None:
        self._call("set", key, value)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self._call("append", key, suffix)

    def delete(self, key: bytes) -> None:
        self._call("delete", key)

    def increment(self, key: bytes, delta: int = 1) -> int:
        return int(self._call("increment", key, str(delta).encode()))

    def compare_and_swap(self, key: bytes, expected: bytes, new_value: bytes) -> bool:
        from repro.net.message import encode_cas_value

        return self._call("cas", key, encode_cas_value(expected, new_value)) == b"1"

    def server_stats(self) -> dict:
        """The server's merged operation + resilience counters."""
        return json.loads(self._call("stats", b"").decode("ascii"))

    def multi_get(self, keys) -> dict:
        """Pipelined MGET: many keys, one wire round trip."""
        from repro.net.message import decode_multi_values, encode_multi_keys

        keys = [bytes(key) for key in keys]
        raw = self._call("mget", b"", encode_multi_keys(keys))
        return dict(zip(keys, decode_multi_values(raw)))

    def multi_set(self, items) -> None:
        """Pipelined MSET: many pairs, one wire round trip."""
        from repro.net.message import encode_multi_items

        self._call("mset", b"", encode_multi_items(items))

    def multi_delete(self, keys) -> dict:
        """Pipelined MDELETE; returns ``{key: was_present}``."""
        from repro.net.message import decode_multi_values, encode_multi_keys

        keys = [bytes(key) for key in keys]
        raw = self._call("mdelete", b"", encode_multi_keys(keys))
        return {
            key: flag is not None
            for key, flag in zip(keys, decode_multi_values(raw))
        }

    def close(self) -> None:
        self._teardown()


