"""Multi-client session management for the networked server.

The paper's networked evaluation drives the server with 256 concurrent
clients (§6.1); each client holds its own attested session (§3.2).  This
module provides the session layer the single-channel
:class:`~repro.net.server.NetworkedServer` elides:

* :class:`SessionManager` — enclave-side registry of live sessions, each
  with its own channel keys derived from its own DH exchange;
* per-session sequence state, so one client's replay cannot be laundered
  through another's session;
* idle expiry and explicit revocation (key compromise response);
* rekeying: a session can be rotated to fresh keys without re-attesting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.keys import derive_key
from repro.crypto.suite import make_suite
from repro.errors import ProtocolError
from repro.net.message import SecureChannel
from repro.sim.attestation import AttestationService, DHKeyPair
from repro.sim.enclave import Enclave, ExecContext
from repro.sim.sdk import sgx_read_rand


@dataclass
class Session:
    """One live client session inside the enclave."""

    session_id: int
    channel: SecureChannel
    established_us: float
    last_used_us: float
    rekeys: int = 0
    requests: int = 0
    # "client" for ordinary clients, "peer" for replication-group links
    # (repro.ext.replication) — peers replicate through the same
    # attested sessions, but operators want to see them separately.
    kind: str = "client"


class SessionManager:
    """Enclave-side registry of attested client sessions."""

    def __init__(
        self,
        enclave: Enclave,
        attestation: AttestationService,
        idle_timeout_us: float = 60_000_000.0,
        max_sessions: int = 1024,
    ):
        self.enclave = enclave
        self.attestation = attestation
        self.idle_timeout_us = idle_timeout_us
        self.max_sessions = max_sessions
        self._sessions: Dict[int, Session] = {}
        self._next_id = 1
        self.expired_sessions = 0
        self.revoked_sessions = 0

    # -- establishment ---------------------------------------------------
    def open_session(
        self, ctx: ExecContext, client_entropy: bytes, kind: str = "client"
    ) -> Tuple[int, SecureChannel]:
        """Run the §3.2 handshake; returns (session_id, client_channel).

        The returned channel is what the *client* holds; the server-side
        twin is stored in the registry under the new session id.
        """
        if len(self._sessions) >= self.max_sessions:
            self._expire_idle(ctx, force_oldest=True)
        server_dh = DHKeyPair(sgx_read_rand(ctx, 32))
        report = hashlib.sha256(server_dh.public.to_bytes(256, "big")).digest()
        quote = self.attestation.quote(ctx, self.enclave, report)
        # Client side: verify before keying anything.
        self.attestation.verify(quote, self.enclave.measurement)
        client_dh = DHKeyPair(client_entropy)
        shared_server = server_dh.shared_secret(client_dh.public)
        shared_client = client_dh.shared_secret(server_dh.public)
        session_id = self._next_id
        self._next_id += 1
        server_channel = self._derive_channel(shared_server, session_id, "server")
        client_channel = self._derive_channel(shared_client, session_id, "client")
        if kind not in ("client", "peer"):
            raise ProtocolError(f"unknown session kind {kind!r}")
        now = ctx.machine.elapsed_us()
        self._sessions[session_id] = Session(
            session_id, server_channel, established_us=now, last_used_us=now,
            kind=kind,
        )
        return session_id, client_channel

    @staticmethod
    def _derive_channel(shared: bytes, session_id: int, role: str) -> SecureChannel:
        root = hashlib.sha256(shared + session_id.to_bytes(8, "little")).digest()
        suite = make_suite(
            "fast-hashlib", derive_key(root, "sess/enc"), derive_key(root, "sess/mac")
        )
        return SecureChannel(suite, role)

    # -- request path ----------------------------------------------------
    def open_record(self, ctx: ExecContext, session_id: int, sealed: bytes) -> bytes:
        """Decrypt one request record under its session's keys."""
        session = self._lookup(ctx, session_id)
        plaintext = session.channel.open(sealed)
        session.requests += 1
        session.last_used_us = ctx.machine.elapsed_us()
        return plaintext

    def seal_record(self, ctx: ExecContext, session_id: int, payload: bytes) -> bytes:
        """Encrypt one response record under its session's keys."""
        session = self._lookup(ctx, session_id)
        return session.channel.seal(payload)

    def _lookup(self, ctx: ExecContext, session_id: int) -> Session:
        self._expire_idle(ctx)
        session = self._sessions.get(session_id)
        if session is None:
            raise ProtocolError(f"no such session {session_id} (expired or revoked)")
        return session

    # -- lifecycle ---------------------------------------------------------
    def _expire_idle(self, ctx: ExecContext, force_oldest: bool = False) -> None:
        now = ctx.machine.elapsed_us()
        stale = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_used_us > self.idle_timeout_us
        ]
        for sid in stale:
            del self._sessions[sid]
            self.expired_sessions += 1
        if force_oldest and len(self._sessions) >= self.max_sessions:
            oldest = min(self._sessions.values(), key=lambda s: s.last_used_us)
            del self._sessions[oldest.session_id]
            self.expired_sessions += 1

    def revoke(self, session_id: int) -> None:
        """Drop a session immediately (suspected key compromise)."""
        if self._sessions.pop(session_id, None) is not None:
            self.revoked_sessions += 1

    def rekey(
        self, ctx: ExecContext, session_id: int, client_entropy: bytes
    ) -> SecureChannel:
        """Rotate a live session to fresh keys (new DH, same attestation).

        Returns the client's new channel; the old keys stop working.
        """
        session = self._lookup(ctx, session_id)
        server_dh = DHKeyPair(sgx_read_rand(ctx, 32))
        client_dh = DHKeyPair(client_entropy)
        epoch = session.rekeys + 1
        server_channel = self._derive_channel(
            server_dh.shared_secret(client_dh.public),
            session_id * 1_000 + epoch,
            "server",
        )
        client_channel = self._derive_channel(
            client_dh.shared_secret(server_dh.public),
            session_id * 1_000 + epoch,
            "client",
        )
        session.channel = server_channel
        session.rekeys = epoch
        session.last_used_us = ctx.machine.elapsed_us()
        return client_channel

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def peer_sessions(self) -> int:
        """Live sessions opened by replication peers (not clients)."""
        return sum(1 for s in self._sessions.values() if s.kind == "peer")

    def session_info(self, session_id: int) -> Optional[Session]:
        """Read-only session record (None when absent)."""
        return self._sessions.get(session_id)
