"""Simulated networked front-end (paper §6.4, Figure 18).

The networked evaluation adds two costs on top of the standalone store:

* **socket I/O** — kernel entries for ``recv``/``send`` plus per-byte
  line costs, with a lightly serialized kernel network-stack section
  that keeps 4-thread scaling below ideal (Table 1: memcached scales
  313->877 Kop/s, ~2.8x on 4 cores);
* **enclave crossings** — an enclave server must leave the enclave for
  every socket call.  The OCALL front-end pays two ~8,000-cycle
  crossings per request; the HotCalls front-end replaces them with two
  ~620-cycle shared-memory handoffs (Weisse et al.).  The *real* (not
  cost-modeled) analogue of that switchless handoff is the shm data
  plane of :mod:`repro.core.shmring`: sealed shared-memory rings with
  a spin-then-doorbell wait, used by the process partition engine
  behind the event-loop TCP server in :mod:`repro.net.tcp`.

Plus, when the session is secure, request/response en/decryption under
the attested session key (§3.2).

The server is driven synchronously by the experiment harness — the
paper's 256 concurrent clients keep the server saturated, so simulated
throughput is server-side cost per request.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import KeyNotFoundError, ProtocolError, WorkerError
from repro.net.message import (
    BATCH_OPS,
    STATUS_ERROR,
    STATUS_MISS,
    STATUS_OK,
    Request,
    Response,
    SecureChannel,
    decode_multi_items,
    decode_multi_keys,
    decode_request,
    encode_multi_values,
    encode_request,
    encode_response,
)
from repro.sim.clock import PagingSerializer

FRONTEND_DIRECT = "direct"      # insecure server: no enclave at all
FRONTEND_OCALL = "ocall"        # enclave server, socket I/O via OCALLs
FRONTEND_HOTCALLS = "hotcalls"  # enclave server, switchless HotCalls

# Serialized kernel network-stack section per request (softirq, socket
# locks); calibrated against Table 1's 4-thread memcached scaling.
NET_SERIAL_US = 0.25


def execute_batch(store, request: Request) -> Response:
    """Serve one pipelined MGET/MSET/MDELETE request against ``store``.

    Stores exposing the batched pipeline (``multi_get`` and friends) get
    the amortized path; anything else — baselines, plain dict-backed
    test doubles — falls back to per-key single operations with the same
    wire semantics.  Shared by the cost-modeled and the real TCP
    front-ends.
    """
    if request.op == "mget":
        keys = decode_multi_keys(request.value)
        if hasattr(store, "multi_get"):
            found = store.multi_get(keys)
            values = [found[bytes(key)] for key in keys]
        else:
            values = []
            for key in keys:
                try:
                    values.append(store.get(key))
                except KeyNotFoundError:
                    values.append(None)
        return Response(STATUS_OK, encode_multi_values(values))
    if request.op == "mset":
        items = decode_multi_items(request.value)
        if hasattr(store, "multi_set"):
            store.multi_set(items)
        else:
            for key, value in items:
                store.set(key, value)
        return Response(STATUS_OK)
    if request.op == "mdelete":
        keys = decode_multi_keys(request.value)
        if hasattr(store, "multi_delete"):
            deleted = store.multi_delete(keys)
            flags = [b"1" if deleted[bytes(key)] else None for key in keys]
        else:
            flags = []
            for key in keys:
                try:
                    store.delete(key)
                    flags.append(b"1")
                except KeyNotFoundError:
                    flags.append(None)
        return Response(STATUS_OK, encode_multi_values(flags))
    raise ProtocolError(f"{request.op!r} is not a batch operation")


def execute_request(store, request: Request) -> Response:
    """Serve one decoded request (single-key or batch) against ``store``.

    The op switch shared by every front-end: the cost-modeled
    :class:`NetworkedServer`, the real TCP server, and the multiprocess
    partition workers (:mod:`repro.core.procpool`).  Missing keys come
    back as ``STATUS_MISS``; integrity/crypto failures propagate to the
    caller, because what to do with a tampered store is a front-end
    policy decision (drop the session, crash the worker, ...).
    """
    try:
        if request.op in BATCH_OPS:
            return execute_batch(store, request)
        if request.op == "get":
            return Response(STATUS_OK, store.get(request.key))
        if request.op == "set":
            store.set(request.key, request.value)
            return Response(STATUS_OK)
        if request.op == "append":
            return Response(STATUS_OK, store.append(request.key, request.value))
        if request.op == "delete":
            store.delete(request.key)
            return Response(STATUS_OK)
        if request.op == "increment":
            new = store.increment(request.key, int(request.value or b"1"))
            return Response(STATUS_OK, str(new).encode())
        if request.op == "cas":
            from repro.net.message import decode_cas_value

            expected, new_value = decode_cas_value(request.value)
            swapped = store.compare_and_swap(request.key, expected, new_value)
            return Response(STATUS_OK, b"1" if swapped else b"0")
        # Replication verbs (repro.ext.replication).  Only replication-
        # capable stores answer them; anything else falls through to
        # STATUS_ERROR, so a stray OP_REPLICATE at a plain server is a
        # visible error rather than a silent write.
        if request.op == "vget":
            if not hasattr(store, "get_versioned"):
                return Response(STATUS_ERROR)
            return Response(STATUS_OK, store.get_versioned(request.key))
        if request.op == "replicate":
            if not hasattr(store, "apply_remote"):
                return Response(STATUS_ERROR)
            applied, node_clock = store.apply_remote(request.key, request.value)
            return Response(STATUS_OK, b"%d:%d" % (int(applied), node_clock))
        if request.op == "sync":
            if not hasattr(store, "serve_sync"):
                return Response(STATUS_ERROR)
            return Response(STATUS_OK, store.serve_sync(request.key, request.value))
    except KeyNotFoundError:
        return Response(STATUS_MISS)
    except WorkerError:
        # A partition worker died mid-request.  The pool recovers in
        # place (respawn + snapshot restore), so the fault is transient:
        # report an error for *this* request instead of letting the
        # exception tear down the whole connection/session.
        return Response(STATUS_ERROR)
    return Response(STATUS_ERROR)


class NetworkedServer:
    """Request front-end wrapping any store implementation."""

    def __init__(
        self,
        store,
        frontend: str = FRONTEND_OCALL,
        server_channel: Optional[SecureChannel] = None,
        client_channel: Optional[SecureChannel] = None,
    ):
        if frontend not in (FRONTEND_DIRECT, FRONTEND_OCALL, FRONTEND_HOTCALLS):
            raise ProtocolError(f"unknown front-end {frontend!r}")
        self.store = store
        self.machine = store.machine
        self.frontend = frontend
        self.server_channel = server_channel
        self.client_channel = client_channel
        self._net_lock = PagingSerializer()
        self.machine.register_serializer(self._net_lock)
        self.requests_served = 0

    # -- internals ---------------------------------------------------------
    def _serving_thread(self, key: bytes) -> int:
        from repro.experiments.common import serving_thread

        return serving_thread(self.store, key)

    def _charge_network(self, clock, nbytes: int) -> None:
        cost = self.machine.cost
        # recv + send kernel entries and line costs; a slice of the
        # kernel stack work is serialized across all server threads.
        total = 2 * cost.syscall_cycles + cost.us_to_cycles(
            nbytes * cost.net_per_byte_us
        )
        serialized = cost.us_to_cycles(NET_SERIAL_US)
        clock.charge(max(0.0, total - serialized))
        self._net_lock.service(clock, serialized)

    def _charge_crossings(self, clock) -> None:
        cost = self.machine.cost
        if self.frontend == FRONTEND_OCALL:
            clock.charge(2 * cost.ocall_cycles)
            self.machine.counters.ocalls += 2
        elif self.frontend == FRONTEND_HOTCALLS:
            clock.charge(2 * cost.hotcall_cycles)
            self.machine.counters.hotcalls += 2

    def _execute(self, request: Request) -> Response:
        return execute_request(self.store, request)

    # -- entry point ---------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Serve one request, charging all front-end costs."""
        thread = self._serving_thread(request.key)
        clock = self.machine.clock.threads[thread]
        cost = self.machine.cost

        raw = encode_request(request)
        secured = self.server_channel is not None
        if secured:
            wire = self.client_channel.seal(raw)
        else:
            wire = raw

        self._charge_network(clock, len(wire))
        self._charge_crossings(clock)
        if self.frontend != FRONTEND_DIRECT:
            # Request bytes are copied from the untrusted socket buffer
            # into enclave memory (and the response back out) — the
            # "copying data back and forth from an enclave" cost of §6.4.
            clock.charge(cost.mem_cycles(len(wire), write=True, in_epc=True))

        if secured:
            # Decrypt + verify the request inside the enclave.
            clock.charge(cost.aes_cycles(len(raw)) + cost.cmac_cycles(len(wire)))
            raw = self.server_channel.open(wire)
        response = self._execute(decode_request(raw))
        out = encode_response(response)
        if self.frontend != FRONTEND_DIRECT:
            clock.charge(cost.mem_cycles(len(out), write=True, in_epc=True))
        if secured:
            clock.charge(cost.aes_cycles(len(out)) + cost.cmac_cycles(len(out)))
            sealed_out = self.server_channel.seal(out)
            response_raw = self.client_channel.open(sealed_out)
            response = _reparse(response_raw)
        self.requests_served += 1
        return response


def _reparse(raw: bytes) -> Response:
    from repro.net.message import decode_response

    return decode_response(raw)


def make_secure_channels(suite_client, suite_server):
    """Build the paired channels after an attested handshake.

    Returns (client_channel, server_channel) sharing session keys.
    """
    return SecureChannel(suite_client, "client"), SecureChannel(suite_server, "server")
