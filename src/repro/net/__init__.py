"""Networked front-ends: wire protocol, secure sessions, servers.

* :mod:`repro.net.message` — protocol codec + authenticated channels;
* :mod:`repro.net.server` / :mod:`repro.net.client` — cost-modeled
  front-end used by the Fig. 18 / Fig. 19 / Table 1 experiments;
* :mod:`repro.net.tcp` — a real localhost TCP deployment with remote
  attestation, for examples and integration tests.
"""

from repro.net.client import SimClient
from repro.net.message import (
    Request,
    Response,
    SecureChannel,
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_MISS,
    STATUS_OK,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.net.sessions import Session, SessionManager
from repro.net.server import (
    FRONTEND_DIRECT,
    FRONTEND_HOTCALLS,
    FRONTEND_OCALL,
    NetworkedServer,
    make_secure_channels,
)
from repro.net.tcp import SnapshotDaemon, TCPShieldClient, TCPShieldServer

__all__ = [
    "FRONTEND_DIRECT",
    "FRONTEND_HOTCALLS",
    "FRONTEND_OCALL",
    "NetworkedServer",
    "Request",
    "Response",
    "STATUS_BUSY",
    "STATUS_ERROR",
    "STATUS_MISS",
    "STATUS_OK",
    "SecureChannel",
    "Session",
    "SessionManager",
    "SimClient",
    "SnapshotDaemon",
    "TCPShieldClient",
    "TCPShieldServer",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "make_secure_channels",
]
